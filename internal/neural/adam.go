package neural

import (
	"fmt"
	"math"
)

// ParamSet is a registry of trainable matrices, shared by a model and
// its optimizer.
type ParamSet struct {
	mats  []*Mat
	names []string
}

// Register adds a matrix under a name (names make save/load stable).
func (p *ParamSet) Register(name string, m *Mat) *Mat {
	p.mats = append(p.mats, m)
	p.names = append(p.names, name)
	return m
}

// Mats returns the registered matrices.
func (p *ParamSet) Mats() []*Mat { return p.mats }

// Names returns the registered names, parallel to Mats.
func (p *ParamSet) Names() []string { return p.names }

// ZeroGrad clears all gradients.
func (p *ParamSet) ZeroGrad() {
	for _, m := range p.mats {
		m.ZeroGrad()
	}
}

// Shadow returns a parameter set whose matrices share this set's
// weight buffers but own fresh gradient buffers, registered under the
// same names in the same order. A shadow set is what a minibatch
// worker backprops into while the shared weights stay read-only; see
// Mat.Shadow.
func (p *ParamSet) Shadow() *ParamSet {
	out := &ParamSet{}
	for i, m := range p.mats {
		out.Register(p.names[i], m.Shadow())
	}
	return out
}

// MergeGradsFrom adds other's gradients into p's (matrix by matrix, in
// registration order) and zeroes other's gradient buffers so the
// shadow set can be reused for the next batch. The two sets must have
// been registered in the same order with the same shapes (AddGrad
// panics otherwise). Because callers invoke this sequentially in lane
// order, the floating-point merge order is fixed regardless of how
// many workers produced the shadows.
func (p *ParamSet) MergeGradsFrom(other *ParamSet) {
	if len(other.mats) != len(p.mats) {
		panic(fmt.Sprintf("neural: MergeGradsFrom set size mismatch: %d vs %d", len(p.mats), len(other.mats)))
	}
	for i, m := range p.mats {
		m.AddGrad(other.mats[i])
		other.mats[i].ZeroGrad()
	}
}

// GradNorm returns the global L2 norm of all gradients.
func (p *ParamSet) GradNorm() float64 {
	s := 0.0
	for _, m := range p.mats {
		for _, g := range m.G {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGrad scales gradients so the global norm is at most maxNorm.
func (p *ParamSet) ClipGrad(maxNorm float64) {
	n := p.GradNorm()
	if n <= maxNorm || n == 0 {
		return
	}
	scale := maxNorm / n
	for _, m := range p.mats {
		for i := range m.G {
			m.G[i] *= scale
		}
	}
}

// NumParams returns the total number of scalar parameters.
func (p *ParamSet) NumParams() int {
	n := 0
	for _, m := range p.mats {
		n += len(m.W)
	}
	return n
}

// Adam is the Adam optimizer (Kingma & Ba) over a ParamSet.
type Adam struct {
	LR     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	t      int
	m, v   [][]float64
	params *ParamSet
}

// NewAdam returns an Adam optimizer with the usual defaults.
func NewAdam(p *ParamSet, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: p}
	for _, m := range p.mats {
		a.m = append(a.m, make([]float64, len(m.W)))
		a.v = append(a.v, make([]float64, len(m.W)))
	}
	return a
}

// AdamState is the optimizer's serializable state: the step counter
// and the first/second moment buffers, in parameter registration
// order. Checkpoint/resume must carry it — resuming with fresh moments
// would change every subsequent update.
type AdamState struct {
	T    int
	M, V [][]float64
}

// State snapshots the optimizer (deep copies, safe to serialize while
// training continues).
func (a *Adam) State() AdamState {
	st := AdamState{T: a.t, M: make([][]float64, len(a.m)), V: make([][]float64, len(a.v))}
	for i := range a.m {
		st.M[i] = append([]float64(nil), a.m[i]...)
		st.V[i] = append([]float64(nil), a.v[i]...)
	}
	return st
}

// Restore loads a snapshot taken by State into this optimizer. The
// optimizer must have been built over a ParamSet with the same shapes.
func (a *Adam) Restore(st AdamState) error {
	if len(st.M) != len(a.m) || len(st.V) != len(a.v) {
		return fmt.Errorf("neural: Adam.Restore: state has %d/%d moment buffers, optimizer has %d", len(st.M), len(st.V), len(a.m))
	}
	for i := range a.m {
		if len(st.M[i]) != len(a.m[i]) || len(st.V[i]) != len(a.v[i]) {
			return fmt.Errorf("neural: Adam.Restore: moment buffer %d has %d/%d values, want %d", i, len(st.M[i]), len(st.V[i]), len(a.m[i]))
		}
		copy(a.m[i], st.M[i])
		copy(a.v[i], st.V[i])
	}
	a.t = st.T
	return nil
}

// Step applies one Adam update from the accumulated gradients and
// clears them.
func (a *Adam) Step() {
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for k, mat := range a.params.mats {
		mbuf, vbuf := a.m[k], a.v[k]
		for i, g := range mat.G {
			if g == 0 && mbuf[i] == 0 && vbuf[i] == 0 {
				continue // untouched sparse rows (embeddings)
			}
			mbuf[i] = a.Beta1*mbuf[i] + (1-a.Beta1)*g
			vbuf[i] = a.Beta2*vbuf[i] + (1-a.Beta2)*g*g
			mhat := mbuf[i] / b1c
			vhat := vbuf[i] / b2c
			mat.W[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
			mat.G[i] = 0
		}
	}
}
