package neural

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At broken")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 5 {
		t.Fatal("Row broken")
	}
	m.G[0] = 1
	m.ZeroGrad()
	if m.G[0] != 0 {
		t.Fatal("ZeroGrad broken")
	}
	c := m.Copy()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Copy shares storage")
	}
}

func TestMulVecAndTranspose(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.W, []float64{1, 2, 3, 4, 5, 6})
	v := []float64{1, 1, 1}
	y := NewVec(2)
	m.MulVec(v, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	y2 := NewVec(2)
	copy(y2, []float64{1, 1})
	m.MulVecAdd(v, y2)
	if y2[0] != 7 || y2[1] != 16 {
		t.Fatalf("MulVecAdd = %v", y2)
	}
	u := []float64{1, 2}
	x := NewVec(3)
	m.MulVecT(u, x)
	if x[0] != 9 || x[1] != 12 || x[2] != 15 {
		t.Fatalf("MulVecT = %v", x)
	}
	m.AddOuterGrad(u, v)
	if m.G[0] != 1 || m.G[3] != 2 {
		t.Fatalf("AddOuterGrad = %v", m.G)
	}
}

func TestSoftmax(t *testing.T) {
	out := Softmax([]float64{1, 2, 3}, NewVec(3))
	sum := out[0] + out[1] + out[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Fatalf("softmax ordering = %v", out)
	}
	// Large logits must not overflow.
	big := Softmax([]float64{1000, 1001}, NewVec(2))
	if math.IsNaN(big[0]) || math.IsInf(big[1], 0) {
		t.Fatal("softmax overflow")
	}
}

func TestSoftmaxQuick(t *testing.T) {
	f := func(a, b, c float64) bool {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 500 {
				return true // skip pathological inputs
			}
		}
		out := Softmax([]float64{a, b, c}, NewVec(3))
		sum := 0.0
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArgmaxAndDot(t *testing.T) {
	if Argmax([]float64{1, 5, 3}) != 1 {
		t.Fatal("Argmax broken")
	}
	if Argmax([]float64{2, 2}) != 0 {
		t.Fatal("Argmax tie should pick first")
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot broken")
	}
}

// TestGRUGradient checks the GRU cell backward pass against finite
// differences, including gradients w.r.t. inputs.
func TestGRUGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := &ParamSet{}
	g := NewGRU(ps, "g", 3, 4, rng)
	x := []float64{0.3, -0.2, 0.5}
	h := []float64{0.1, 0.4, -0.3, 0.2}

	// Loss = sum(hNew).
	loss := func() float64 {
		hn, _ := g.Forward(x, h)
		s := 0.0
		for _, v := range hn {
			s += v
		}
		return s
	}
	_, cache := g.Forward(x, h)
	dH := []float64{1, 1, 1, 1}
	ps.ZeroGrad()
	dx, dh := g.Backward(cache, dH)

	const eps = 1e-6
	for mi, mat := range ps.Mats() {
		for i := 0; i < len(mat.W); i += 3 {
			orig := mat.W[i]
			mat.W[i] = orig + eps
			lp := loss()
			mat.W[i] = orig - eps
			lm := loss()
			mat.W[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-mat.G[i]) > 1e-5 {
				t.Fatalf("param %s[%d]: analytic %v numeric %v", ps.Names()[mi], i, mat.G[i], num)
			}
		}
	}
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp := loss()
		x[i] = orig - eps
		lm := loss()
		x[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx[i]) > 1e-5 {
			t.Fatalf("dx[%d]: analytic %v numeric %v", i, dx[i], num)
		}
	}
	for i := range h {
		orig := h[i]
		h[i] = orig + eps
		lp := loss()
		h[i] = orig - eps
		lm := loss()
		h[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dh[i]) > 1e-5 {
			t.Fatalf("dh[%d]: analytic %v numeric %v", i, dh[i], num)
		}
	}
}

// TestAdamConvergence fits a tiny linear regression.
func TestAdamConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := &ParamSet{}
	lin := NewLinear(ps, "lin", 2, 1, rng)
	opt := NewAdam(ps, 0.05)
	// Target: y = 3*x0 - 2*x1 + 1.
	for step := 0; step < 600; step++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		want := 3*x[0] - 2*x[1] + 1
		y := lin.Forward(x)
		d := y[0] - want
		lin.Backward(x, []float64{2 * d})
		opt.Step()
	}
	if math.Abs(lin.W.At(0, 0)-3) > 0.05 || math.Abs(lin.W.At(0, 1)+2) > 0.05 || math.Abs(lin.B.W[0]-1) > 0.05 {
		t.Fatalf("regression did not converge: W=%v B=%v", lin.W.W, lin.B.W)
	}
}

func TestClipGrad(t *testing.T) {
	ps := &ParamSet{}
	m := ps.Register("m", NewMat(1, 2))
	m.G[0] = 3
	m.G[1] = 4 // norm 5
	ps.ClipGrad(1)
	if math.Abs(ps.GradNorm()-1) > 1e-9 {
		t.Fatalf("clipped norm = %v", ps.GradNorm())
	}
	// No-op when already within bounds.
	m.G[0], m.G[1] = 0.3, 0.4
	ps.ClipGrad(1)
	if math.Abs(m.G[0]-0.3) > 1e-12 {
		t.Fatal("clip changed small grads")
	}
}

func TestEmbeddingAccum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := &ParamSet{}
	e := NewEmbedding(ps, "e", 5, 4, rng)
	g := []float64{1, 2, 3, 4}
	e.AccumGrad(2, g)
	e.AccumGrad(2, g)
	row := e.E.GradRow(2)
	if row[0] != 2 || row[3] != 8 {
		t.Fatalf("AccumGrad = %v", row)
	}
	// Out-of-range lookups clamp instead of panicking.
	_ = e.Lookup(-1)
	_ = e.Lookup(100)
	e.AccumGrad(-5, g)
}

func TestParamSetSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps := &ParamSet{}
	a := ps.Register("a", NewMatRand(2, 3, rng))
	b := ps.Register("b", NewMatRand(4, 1, rng))
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		t.Fatal(err)
	}

	ps2 := &ParamSet{}
	a2 := ps2.Register("a", NewMat(2, 3))
	b2 := ps2.Register("b", NewMat(4, 1))
	if err := ps2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		if a2.W[i] != a.W[i] {
			t.Fatal("a weights not restored")
		}
	}
	for i := range b.W {
		if b2.W[i] != b.W[i] {
			t.Fatal("b weights not restored")
		}
	}

	// Shape mismatch is an error.
	var buf2 bytes.Buffer
	if err := ps.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	ps3 := &ParamSet{}
	ps3.Register("a", NewMat(3, 3))
	ps3.Register("b", NewMat(4, 1))
	if err := ps3.Load(&buf2); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestNumParams(t *testing.T) {
	ps := &ParamSet{}
	ps.Register("a", NewMat(2, 3))
	ps.Register("b", NewMat(4, 1))
	if ps.NumParams() != 10 {
		t.Fatalf("NumParams = %d", ps.NumParams())
	}
}
