package neural

import (
	"fmt"
	"math/rand"
)

// GRU is a gated recurrent unit cell:
//
//	z  = σ(Wz x + Uz h + bz)
//	r  = σ(Wr x + Ur h + br)
//	c  = tanh(Wh x + Uh (r⊙h) + bh)
//	h' = (1-z)⊙h + z⊙c
type GRU struct {
	In, Hid                            int
	Wz, Uz, Bz, Wr, Ur, Br, Wh, Uh, Bh *Mat
}

// NewGRU builds a GRU cell and registers its parameters under the
// given name prefix.
func NewGRU(ps *ParamSet, prefix string, in, hid int, rng *rand.Rand) *GRU {
	reg := func(n string, m *Mat) *Mat { return ps.Register(prefix+"."+n, m) }
	return &GRU{
		In: in, Hid: hid,
		Wz: reg("Wz", NewMatRand(hid, in, rng)),
		Uz: reg("Uz", NewMatRand(hid, hid, rng)),
		Bz: reg("Bz", NewMat(hid, 1)),
		Wr: reg("Wr", NewMatRand(hid, in, rng)),
		Ur: reg("Ur", NewMatRand(hid, hid, rng)),
		Br: reg("Br", NewMat(hid, 1)),
		Wh: reg("Wh", NewMatRand(hid, in, rng)),
		Uh: reg("Uh", NewMatRand(hid, hid, rng)),
		Bh: reg("Bh", NewMat(hid, 1)),
	}
}

// Shadow returns a GRU over shadow matrices (shared weights, private
// gradients) registered on ps under the same prefix and in the same
// order as NewGRU, so a shadow ParamSet stays merge-compatible with
// the original (see ParamSet.MergeGradsFrom).
func (g *GRU) Shadow(ps *ParamSet, prefix string) *GRU {
	reg := func(n string, m *Mat) *Mat { return ps.Register(prefix+"."+n, m.Shadow()) }
	return &GRU{
		In: g.In, Hid: g.Hid,
		Wz: reg("Wz", g.Wz),
		Uz: reg("Uz", g.Uz),
		Bz: reg("Bz", g.Bz),
		Wr: reg("Wr", g.Wr),
		Ur: reg("Ur", g.Ur),
		Br: reg("Br", g.Br),
		Wh: reg("Wh", g.Wh),
		Uh: reg("Uh", g.Uh),
		Bh: reg("Bh", g.Bh),
	}
}

// GRUCache holds the intermediates of one forward step needed by the
// backward pass.
type GRUCache struct {
	X, H        []float64 // inputs
	Z, R, C, RH []float64 // gates, candidate, r⊙h
	HNew        []float64
}

// Forward computes one step and returns the new hidden state with the
// cache for backprop. x has length In, h length Hid.
func (g *GRU) Forward(x, h []float64) ([]float64, *GRUCache) {
	hid := g.Hid
	cache := &GRUCache{
		X: x, H: h,
		Z: NewVec(hid), R: NewVec(hid), C: NewVec(hid),
		RH: NewVec(hid), HNew: NewVec(hid),
	}
	az := NewVec(hid)
	g.Wz.MulVec(x, az)
	g.Uz.MulVecAdd(h, az)
	for i := range az {
		az[i] += g.Bz.W[i]
	}
	Sigmoid(az, cache.Z)

	ar := NewVec(hid)
	g.Wr.MulVec(x, ar)
	g.Ur.MulVecAdd(h, ar)
	for i := range ar {
		ar[i] += g.Br.W[i]
	}
	Sigmoid(ar, cache.R)

	for i := range cache.RH {
		cache.RH[i] = cache.R[i] * h[i]
	}
	ac := NewVec(hid)
	g.Wh.MulVec(x, ac)
	g.Uh.MulVecAdd(cache.RH, ac)
	for i := range ac {
		ac[i] += g.Bh.W[i]
	}
	Tanh(ac, cache.C)

	for i := range cache.HNew {
		cache.HNew[i] = (1-cache.Z[i])*h[i] + cache.Z[i]*cache.C[i]
	}
	return cache.HNew, cache
}

// Backward accumulates parameter gradients for one step given the
// gradient dHNew w.r.t. the step's output, and returns (dx, dh), the
// gradients w.r.t. the step's inputs.
func (g *GRU) Backward(cache *GRUCache, dHNew []float64) (dx, dh []float64) {
	hid := g.Hid
	dx = NewVec(g.In)
	dh = NewVec(hid)

	dc := NewVec(hid)
	dz := NewVec(hid)
	for i := 0; i < hid; i++ {
		dc[i] = dHNew[i] * cache.Z[i]
		dz[i] = dHNew[i] * (cache.C[i] - cache.H[i])
		dh[i] += dHNew[i] * (1 - cache.Z[i])
	}

	// Candidate path: c = tanh(ac).
	dac := NewVec(hid)
	for i := 0; i < hid; i++ {
		dac[i] = dc[i] * (1 - cache.C[i]*cache.C[i])
	}
	g.Wh.AddOuterGrad(dac, cache.X)
	g.Uh.AddOuterGrad(dac, cache.RH)
	for i := 0; i < hid; i++ {
		g.Bh.G[i] += dac[i]
	}
	g.Wh.MulVecT(dac, dx)
	dRH := NewVec(hid)
	g.Uh.MulVecT(dac, dRH)
	dr := NewVec(hid)
	for i := 0; i < hid; i++ {
		dr[i] = dRH[i] * cache.H[i]
		dh[i] += dRH[i] * cache.R[i]
	}

	// Update gate path.
	daz := NewVec(hid)
	for i := 0; i < hid; i++ {
		daz[i] = dz[i] * cache.Z[i] * (1 - cache.Z[i])
	}
	g.Wz.AddOuterGrad(daz, cache.X)
	g.Uz.AddOuterGrad(daz, cache.H)
	for i := 0; i < hid; i++ {
		g.Bz.G[i] += daz[i]
	}
	g.Wz.MulVecT(daz, dx)
	g.Uz.MulVecT(daz, dh)

	// Reset gate path.
	dar := NewVec(hid)
	for i := 0; i < hid; i++ {
		dar[i] = dr[i] * cache.R[i] * (1 - cache.R[i])
	}
	g.Wr.AddOuterGrad(dar, cache.X)
	g.Ur.AddOuterGrad(dar, cache.H)
	for i := 0; i < hid; i++ {
		g.Br.G[i] += dar[i]
	}
	g.Wr.MulVecT(dar, dx)
	g.Ur.MulVecT(dar, dh)

	return dx, dh
}

// Embedding is a trainable token-embedding table with sparse gradient
// updates.
type Embedding struct {
	Dim int
	E   *Mat // rows = vocab, cols = dim
}

// NewEmbedding builds an embedding table registered under name.
func NewEmbedding(ps *ParamSet, name string, vocab, dim int, rng *rand.Rand) *Embedding {
	return &Embedding{Dim: dim, E: ps.Register(name, NewMatRand(vocab, dim, rng))}
}

// Shadow returns an Embedding over a shadow matrix (shared weights,
// private gradients) registered on ps under name.
func (e *Embedding) Shadow(ps *ParamSet, name string) *Embedding {
	return &Embedding{Dim: e.Dim, E: ps.Register(name, e.E.Shadow())}
}

// Lookup returns the embedding row for a token id (clamped to the
// table; callers map OOV to a dedicated id).
func (e *Embedding) Lookup(id int) []float64 {
	if id < 0 || id >= e.E.R {
		id = 0
	}
	return e.E.Row(id)
}

// AccumGrad adds g to the gradient row of token id.
func (e *Embedding) AccumGrad(id int, g []float64) {
	if id < 0 || id >= e.E.R {
		id = 0
	}
	row := e.E.GradRow(id)
	for i, v := range g {
		row[i] += v
	}
}

// Linear is a fully connected layer y = W x + b.
type Linear struct {
	In, Out int
	W       *Mat
	B       *Mat
}

// NewLinear builds a linear layer registered under the name prefix.
func NewLinear(ps *ParamSet, prefix string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		In: in, Out: out,
		W: ps.Register(prefix+".W", NewMatRand(out, in, rng)),
		B: ps.Register(prefix+".B", NewMat(out, 1)),
	}
}

// Shadow returns a Linear over shadow matrices (shared weights,
// private gradients) registered on ps under the same prefix and in the
// same order as NewLinear.
func (l *Linear) Shadow(ps *ParamSet, prefix string) *Linear {
	return &Linear{
		In: l.In, Out: l.Out,
		W: ps.Register(prefix+".W", l.W.Shadow()),
		B: ps.Register(prefix+".B", l.B.Shadow()),
	}
}

// Forward computes y = W x + b.
func (l *Linear) Forward(x []float64) []float64 {
	y := NewVec(l.Out)
	l.W.MulVec(x, y)
	for i := range y {
		y[i] += l.B.W[i]
	}
	return y
}

// Backward accumulates gradients given dY and the cached input x, and
// returns dX.
func (l *Linear) Backward(x, dY []float64) []float64 {
	l.W.AddOuterGrad(dY, x)
	for i, g := range dY {
		l.B.G[i] += g
	}
	dx := NewVec(l.In)
	l.W.MulVecT(dY, dx)
	return dx
}

// Validate panics if the layer shapes are inconsistent; used in tests.
func (l *Linear) Validate() {
	if l.W.R != l.Out || l.W.C != l.In || l.B.R != l.Out {
		panic(fmt.Sprintf("neural: inconsistent Linear shapes W=%v B=%v in=%d out=%d", l.W, l.B, l.In, l.Out))
	}
}
