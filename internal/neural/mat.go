// Package neural is a small, dependency-free neural-network substrate
// sufficient to train the NL2SQL translators of this repository on a
// CPU: dense matrices with explicit gradients, embeddings, GRU cells,
// linear layers, Luong dot attention, softmax/cross-entropy, and the
// Adam optimizer. Modules implement explicit forward/backward passes
// (no tape autograd), which keeps the hot loops allocation-light and
// fast enough for the benchmark harness to retrain models many times.
//
// The paper trains its models in a mainstream deep-learning framework
// on GPUs; this package is the substituted substrate (see DESIGN.md).
package neural

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a row-major matrix with a weight buffer and a gradient
// buffer of the same shape.
type Mat struct {
	R, C int
	W    []float64
	G    []float64
}

// NewMat allocates a zero matrix.
func NewMat(r, c int) *Mat {
	return &Mat{R: r, C: c, W: make([]float64, r*c), G: make([]float64, r*c)}
}

// NewMatRand allocates a matrix with Xavier/Glorot uniform init.
func NewMatRand(r, c int, rng *rand.Rand) *Mat {
	m := NewMat(r, c)
	scale := math.Sqrt(6.0 / float64(r+c))
	for i := range m.W {
		m.W[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.W[i*m.C+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.W[i*m.C+j] = v }

// Row returns a view of row i of the weights.
func (m *Mat) Row(i int) []float64 { return m.W[i*m.C : (i+1)*m.C] }

// GradRow returns a view of row i of the gradients.
func (m *Mat) GradRow(i int) []float64 { return m.G[i*m.C : (i+1)*m.C] }

// ZeroGrad clears the gradient buffer.
func (m *Mat) ZeroGrad() {
	for i := range m.G {
		m.G[i] = 0
	}
}

// Copy returns a deep copy of the weights only; the copy's gradient
// buffer is freshly zeroed. Use CopyWithGrads when the gradient state
// must travel with the weights, and Shadow when a worker needs its own
// gradient buffer over shared weights.
func (m *Mat) Copy() *Mat {
	out := NewMat(m.R, m.C)
	copy(out.W, m.W)
	return out
}

// CopyWithGrads returns a deep copy of both the weight and the
// gradient buffer.
func (m *Mat) CopyWithGrads() *Mat {
	out := m.Copy()
	copy(out.G, m.G)
	return out
}

// Shadow returns a matrix that shares m's weight buffer but owns a
// fresh zeroed gradient buffer. Shadow matrices are the unit of the
// minibatch workers' shadow-gradient accumulation: during a batch the
// shared weights are read-only, each worker backprops into its own G,
// and the shadows are merged in deterministic order via AddGrad.
func (m *Mat) Shadow() *Mat {
	return &Mat{R: m.R, C: m.C, W: m.W, G: make([]float64, len(m.G))}
}

// AddGrad accumulates other's gradient buffer into m's (G += other.G).
// It panics when the shapes disagree — merging shadow gradients across
// mismatched parameter sets is a programming error, not a recoverable
// condition.
func (m *Mat) AddGrad(other *Mat) {
	if other.R != m.R || other.C != m.C || len(other.G) != len(m.G) {
		panic(fmt.Sprintf("neural: AddGrad shape mismatch: %v += %v", m, other))
	}
	for i, g := range other.G {
		m.G[i] += g
	}
}

// String summarizes the matrix shape.
func (m *Mat) String() string { return fmt.Sprintf("Mat(%dx%d)", m.R, m.C) }

// MulVec computes y = M v (len(v) == C, len(y) == R).
func (m *Mat) MulVec(v, y []float64) {
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		s := 0.0
		for j, rv := range row {
			s += rv * v[j]
		}
		y[i] = s
	}
}

// MulVecAdd computes y += M v.
func (m *Mat) MulVecAdd(v, y []float64) {
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		s := 0.0
		for j, rv := range row {
			s += rv * v[j]
		}
		y[i] += s
	}
}

// MulVecT computes y += Mᵀ v (len(v) == R, len(y) == C); used for
// gradient backflow through a linear map.
func (m *Mat) MulVecT(v, y []float64) {
	for i := 0; i < m.R; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.W[i*m.C : (i+1)*m.C]
		for j, rv := range row {
			y[j] += vi * rv
		}
	}
}

// AddOuterGrad accumulates G += u vᵀ (len(u) == R, len(v) == C); the
// weight-gradient update of a linear map.
func (m *Mat) AddOuterGrad(u, v []float64) {
	for i := 0; i < m.R; i++ {
		ui := u[i]
		if ui == 0 {
			continue
		}
		grow := m.G[i*m.C : (i+1)*m.C]
		for j, vj := range v {
			grow[j] += ui * vj
		}
	}
}

// Vector helpers -----------------------------------------------------

// NewVec allocates a zero vector.
func NewVec(n int) []float64 { return make([]float64, n) }

// Sigmoid applies the logistic function elementwise into dst.
func Sigmoid(src, dst []float64) {
	for i, v := range src {
		dst[i] = 1.0 / (1.0 + math.Exp(-v))
	}
}

// Tanh applies tanh elementwise into dst.
func Tanh(src, dst []float64) {
	for i, v := range src {
		dst[i] = math.Tanh(v)
	}
}

// Softmax writes the softmax of src into dst and returns dst.
//
// The kernel is a decoder hot path (every decode step runs it over the
// vocabulary and over the attention scores), so it is written to
// minimize passes: one max scan, one fused exp+sum pass, and a final
// normalization that is skipped entirely when the exponentials already
// sum to exactly 1 (a one-element input, or a numerically saturated
// distribution) — multiplying by 1/1 would be a bit-identical no-op.
func Softmax(src, dst []float64) []float64 {
	if len(src) == 1 {
		dst[0] = 1
		return dst
	}
	max := math.Inf(-1)
	for _, v := range src {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range src {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	if sum != 1 {
		inv := 1.0 / sum
		for i := range dst {
			dst[i] *= inv
		}
	}
	return dst
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += a*x.
func Axpy(a float64, x, y []float64) {
	if a == 0 {
		return
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Fill sets every element of v to c.
func Fill(v []float64, c float64) {
	for i := range v {
		v[i] = c
	}
}

// Argmax returns the index of the maximum element (first on ties).
func Argmax(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}
