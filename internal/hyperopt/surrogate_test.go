package hyperopt

import (
	"math"
	"testing"

	"repro/internal/core"
)

// smoothObjective is a synthetic globally structured function (higher
// groupByP and randDropP are monotonically better): model-based search
// can exploit such structure, unlike the paper's real objective, where
// it found no advantage over random search.
func smoothObjective(p core.Params) (float64, bool) {
	g := p.Instantiation.GroupByP / 0.6 // normalized by the space bounds
	d := p.Augmentation.RandDropP / 0.8
	return 0.3*g + 0.3*d, true
}

func TestSurrogateSearchRuns(t *testing.T) {
	trials := SurrogateSearch(DefaultSpace(), 30, 5, 3, smoothObjective)
	if len(trials) != 30 {
		t.Fatalf("trials = %d", len(trials))
	}
	// Sorted converged-first by accuracy.
	for i := 1; i < len(trials); i++ {
		if trials[i-1].Converged && trials[i].Converged && trials[i].Accuracy > trials[i-1].Accuracy {
			t.Fatal("trials not sorted")
		}
	}
}

func TestSurrogateSearchFindsSmoothOptimum(t *testing.T) {
	// On a smooth objective the surrogate search should match or beat
	// random search with the same budget in most seeds.
	wins := 0
	const seeds = 7
	for s := int64(0); s < seeds; s++ {
		sur := SurrogateSearch(DefaultSpace(), 25, 6, s, smoothObjective)
		rnd := RandomSearch(DefaultSpace(), 25, s, smoothObjective)
		if sur[0].Accuracy >= rnd[0].Accuracy-1e-9 {
			wins++
		}
	}
	if wins < seeds/2 {
		t.Fatalf("surrogate won only %d/%d seeds on a smooth objective", wins, seeds)
	}
}

func TestSurrogateSearchHandlesFailures(t *testing.T) {
	obj := func(p core.Params) (float64, bool) {
		if p.Instantiation.SizeSlotFills > 8 {
			return 0, false
		}
		return 0.5, true
	}
	trials := SurrogateSearch(DefaultSpace(), 20, 4, 1, obj)
	conv := 0
	for _, tr := range trials {
		if tr.Converged {
			conv++
		}
	}
	if conv == 0 || conv == len(trials) {
		t.Fatalf("expected a mix of converged/failed trials, got %d/%d", conv, len(trials))
	}
}

func TestSurrogateSearchDeterminism(t *testing.T) {
	a := SurrogateSearch(DefaultSpace(), 15, 4, 9, smoothObjective)
	b := SurrogateSearch(DefaultSpace(), 15, 4, 9, smoothObjective)
	for i := range a {
		if a[i].Accuracy != b[i].Accuracy {
			t.Fatal("surrogate search not deterministic")
		}
	}
}

func TestNormalizeBounds(t *testing.T) {
	space := DefaultSpace()
	p := space.midpoint()
	x := normalize(space, p)
	if len(x) != 10 {
		t.Fatalf("normalized dim = %d", len(x))
	}
	for i, v := range x {
		if v < 0 || v > 1 {
			t.Fatalf("normalized[%d] = %v out of [0,1]", i, v)
		}
	}
}

func TestRBFPredict(t *testing.T) {
	xs := [][]float64{{0, 0}, {1, 1}}
	ys := []float64{0.2, 0.8}
	mu, sigma := rbfPredict(xs, ys, []float64{0, 0})
	if math.Abs(mu-0.2) > 0.1 {
		t.Fatalf("mu near first point = %v", mu)
	}
	if sigma > 0.01 {
		t.Fatalf("sigma at an observed point = %v", sigma)
	}
	_, sigmaFar := rbfPredict(xs, ys, []float64{10, 10})
	if sigmaFar < 0.9 {
		t.Fatalf("sigma far away = %v", sigmaFar)
	}
}
