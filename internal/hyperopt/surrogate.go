package hyperopt

import (
	"math"
	"math/rand"

	"repro/internal/core"
)

// SurrogateSearch is the model-based alternative to random search that
// the paper discusses ("we also experimented with more sophisticated
// hyperparameter search strategies like Bayesian optimization, which
// did not find to improve the accuracy over the random search
// strategy"). It implements a lightweight Bayesian-optimization-style
// loop: after a warm-up of random trials, each step fits an RBF-kernel
// regression surrogate over the evaluated points and evaluates the
// candidate (from a random pool) maximizing the surrogate's upper
// confidence bound.
//
// The paper's finding — no improvement over random search for this
// problem — is reproducible with the comparison benchmark in
// bench_test.go.
func SurrogateSearch(space Space, n, warmup int, seed int64, obj Objective) []Trial {
	if warmup < 2 {
		warmup = 2
	}
	if warmup > n {
		warmup = n
	}
	rng := rand.New(rand.NewSource(seed))
	var trials []Trial
	var xs [][]float64
	var ys []float64

	evaluate := func(p core.Params) {
		acc, ok := obj(p)
		trials = append(trials, Trial{Params: p, Accuracy: acc, Converged: ok})
		if ok {
			xs = append(xs, normalize(space, p))
			ys = append(ys, acc)
		}
	}

	for i := 0; i < warmup; i++ {
		evaluate(space.Sample(rng))
	}
	for len(trials) < n {
		if len(xs) < 2 {
			evaluate(space.Sample(rng))
			continue
		}
		// Candidate pool scored by UCB under the surrogate.
		best := space.Sample(rng)
		bestScore := math.Inf(-1)
		for c := 0; c < 128; c++ {
			cand := space.Sample(rng)
			mu, sigma := rbfPredict(xs, ys, normalize(space, cand))
			score := mu + 0.25*sigma
			if score > bestScore {
				bestScore = score
				best = cand
			}
		}
		evaluate(best)
	}
	sortTrials(trials)
	return trials
}

func sortTrials(trials []Trial) {
	// Converged first, by accuracy descending (stable).
	for i := 1; i < len(trials); i++ {
		for j := i; j > 0; j-- {
			a, b := trials[j-1], trials[j]
			swap := false
			if a.Converged != b.Converged {
				swap = b.Converged
			} else if a.Converged && b.Accuracy > a.Accuracy {
				swap = true
			}
			if !swap {
				break
			}
			trials[j-1], trials[j] = b, a
		}
	}
}

// normalize maps a parameter set into [0,1]^10 for kernel distances.
func normalize(s Space, p core.Params) []float64 {
	ni := func(v int, b [2]int) float64 {
		if b[1] == b[0] {
			return 0
		}
		return float64(v-b[0]) / float64(b[1]-b[0])
	}
	nf := func(v float64, b [2]float64) float64 {
		if b[1] == b[0] {
			return 0
		}
		return (v - b[0]) / (b[1] - b[0])
	}
	return []float64{
		ni(p.Instantiation.SizeSlotFills, s.SizeSlotFills),
		ni(p.Instantiation.SizeTables, s.SizeTables),
		nf(p.Instantiation.GroupByP, s.GroupByP),
		nf(p.Instantiation.JoinBoost, s.JoinBoost),
		nf(p.Instantiation.AggBoost, s.AggBoost),
		nf(p.Instantiation.NestBoost, s.NestBoost),
		ni(p.Augmentation.SizePara, s.SizePara),
		ni(p.Augmentation.NumPara, s.NumPara),
		ni(p.Augmentation.NumMissing, s.NumMissing),
		nf(p.Augmentation.RandDropP, s.RandDropP),
	}
}

// rbfPredict is a Nadaraya–Watson kernel regression with an RBF kernel
// plus a distance-based uncertainty term: mu is the kernel-weighted
// mean of observed accuracies, sigma grows with distance from the
// nearest observation.
func rbfPredict(xs [][]float64, ys []float64, x []float64) (mu, sigma float64) {
	const bandwidth = 0.5
	wsum := 0.0
	msum := 0.0
	nearest := math.Inf(1)
	for i, xi := range xs {
		d2 := 0.0
		for j := range x {
			d := x[j] - xi[j]
			d2 += d * d
		}
		w := math.Exp(-d2 / (2 * bandwidth * bandwidth))
		wsum += w
		msum += w * ys[i]
		if d := math.Sqrt(d2); d < nearest {
			nearest = d
		}
	}
	if wsum < 1e-12 {
		// Far from every observation: global mean, max uncertainty.
		sum := 0.0
		for _, y := range ys {
			sum += y
		}
		return sum / float64(len(ys)), 1
	}
	mu = msum / wsum
	sigma = math.Min(1, nearest)
	return mu, sigma
}
