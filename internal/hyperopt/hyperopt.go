// Package hyperopt implements the paper's optimization procedure
// (§3.3): automatic tuning of the data-generation hyperparameters
// (Table 1) by random search over the black-box function
//
//	Acc = Generate(D, T, φ)
//
// where D is the schema (plus sample data), T a test workload of
// NL–SQL pairs, and φ a candidate parameter set. Each trial runs the
// entire pipeline — data generation and model training — and returns
// the trained model's accuracy on T. Random search samples φ uniformly
// from the parameter space; grid search (the exhaustive alternative
// the paper compares against conceptually) is also provided.
//
// Trials compose their pipelines from the streaming stage API
// (internal/pipeline via core): an objective builds one core.Pipeline
// per (schema, φ) and can share a core.GenCache across trials so that
// candidates with identical instantiation parameters — grid-search
// axes that vary only augmentation knobs, ablation variants, surrogate
// refinements around a midpoint — replay the memoized generate stage
// instead of re-instantiating templates. Cached replay is
// byte-identical to live generation, so memoization never changes a
// trial's corpus or accuracy.
package hyperopt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/augment"
	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/par"
)

// Space bounds the random search. Ranges are inclusive.
type Space struct {
	SizeSlotFills [2]int
	SizeTables    [2]int
	GroupByP      [2]float64
	JoinBoost     [2]float64
	AggBoost      [2]float64
	NestBoost     [2]float64
	SizePara      [2]int
	NumPara       [2]int
	NumMissing    [2]int
	RandDropP     [2]float64
}

// DefaultSpace covers the plausible operating range of every Table-1
// parameter.
func DefaultSpace() Space {
	return Space{
		SizeSlotFills: [2]int{2, 16},
		SizeTables:    [2]int{2, 4},
		GroupByP:      [2]float64{0, 0.6},
		JoinBoost:     [2]float64{0.25, 2},
		AggBoost:      [2]float64{0.25, 2},
		NestBoost:     [2]float64{0.25, 2},
		SizePara:      [2]int{0, 3},
		NumPara:       [2]int{0, 6},
		NumMissing:    [2]int{0, 4},
		RandDropP:     [2]float64{0, 0.8},
	}
}

// Sample draws one uniformly random parameter set.
func (s Space) Sample(rng *rand.Rand) core.Params {
	ri := func(b [2]int) int { return b[0] + rng.Intn(b[1]-b[0]+1) }
	rf := func(b [2]float64) float64 { return b[0] + rng.Float64()*(b[1]-b[0]) }
	return core.Params{
		Instantiation: generator.Params{
			SizeSlotFills: ri(s.SizeSlotFills),
			SizeTables:    ri(s.SizeTables),
			GroupByP:      rf(s.GroupByP),
			JoinBoost:     rf(s.JoinBoost),
			AggBoost:      rf(s.AggBoost),
			NestBoost:     rf(s.NestBoost),
		},
		Augmentation: augment.Params{
			SizePara:   ri(s.SizePara),
			NumPara:    ri(s.NumPara),
			NumMissing: ri(s.NumMissing),
			RandDropP:  rf(s.RandDropP),
		},
	}
}

// Trial is one evaluated parameter set.
type Trial struct {
	Params    core.Params
	Accuracy  float64
	Converged bool // false when the trial was aborted (budget/failure)
}

// Objective evaluates one parameter set: the full Generate(D,T,φ)
// pipeline including model training. Implementations report ok=false
// when the trial did not converge within its budget. Random-search
// objectives are called concurrently and must be safe for concurrent
// use (the repository's objectives are: each trial builds its own
// pipeline, corpus, and model from the candidate parameters).
type Objective func(p core.Params) (acc float64, ok bool)

// SeededObjective is an Objective that additionally receives the
// trial's derived seed (par.SplitSeed of the search seed and the trial
// index), so per-trial randomness is reproducible independent of
// worker count and scheduling order.
type SeededObjective func(p core.Params, trialSeed int64) (acc float64, ok bool)

// RandomSearch evaluates n uniformly sampled parameter sets and
// returns all trials, best first among converged ones. Candidates are
// evaluated concurrently on the default worker pool; the result is
// identical for every worker count.
func RandomSearch(space Space, n int, seed int64, obj Objective) []Trial {
	return RandomSearchWorkers(space, n, seed, 0, func(p core.Params, _ int64) (float64, bool) {
		return obj(p)
	})
}

// RandomSearchWorkers is the fully-knobbed random search: candidates
// are sampled sequentially from the seed's stream (so the candidate
// set matches the sequential implementation bit-for-bit), then
// evaluated concurrently on a pool of at most workers goroutines
// (0 = runtime.NumCPU), each trial receiving its own derived seed.
// Trial results land in per-candidate slots, so the returned ranking
// does not depend on the worker count.
func RandomSearchWorkers(space Space, n int, seed int64, workers int, obj SeededObjective) []Trial {
	rng := rand.New(rand.NewSource(seed))
	params := make([]core.Params, n)
	for i := range params {
		params[i] = space.Sample(rng)
	}
	trials := make([]Trial, n)
	par.Map(workers, n, func(i int) {
		acc, ok := obj(params[i], par.SplitSeed(seed, i))
		trials[i] = Trial{Params: params[i], Accuracy: acc, Converged: ok}
	})
	sort.SliceStable(trials, func(i, j int) bool {
		if trials[i].Converged != trials[j].Converged {
			return trials[i].Converged
		}
		return trials[i].Accuracy > trials[j].Accuracy
	})
	return trials
}

// GridSearch evaluates the corner/midpoint grid of the space (each
// parameter at lo, mid, hi would explode combinatorially, so the grid
// varies one parameter at a time around the space midpoint — the
// axis-aligned grid used for comparison). Unlike RandomSearch it calls
// the objective sequentially, so introspective objectives (recording
// the visited grid, for instance) need no synchronization.
func GridSearch(space Space, obj Objective) []Trial {
	mid := space.midpoint()
	var trials []Trial
	eval := func(p core.Params) {
		acc, ok := obj(p)
		trials = append(trials, Trial{Params: p, Accuracy: acc, Converged: ok})
	}
	eval(mid)
	for axis := 0; axis < 10; axis++ {
		for _, end := range []int{0, 1} {
			p := mid
			space.setAxis(&p, axis, end)
			eval(p)
		}
	}
	sort.SliceStable(trials, func(i, j int) bool { return trials[i].Accuracy > trials[j].Accuracy })
	return trials
}

func (s Space) midpoint() core.Params {
	mi := func(b [2]int) int { return (b[0] + b[1]) / 2 }
	mf := func(b [2]float64) float64 { return (b[0] + b[1]) / 2 }
	return core.Params{
		Instantiation: generator.Params{
			SizeSlotFills: mi(s.SizeSlotFills),
			SizeTables:    mi(s.SizeTables),
			GroupByP:      mf(s.GroupByP),
			JoinBoost:     mf(s.JoinBoost),
			AggBoost:      mf(s.AggBoost),
			NestBoost:     mf(s.NestBoost),
		},
		Augmentation: augment.Params{
			SizePara:   mi(s.SizePara),
			NumPara:    mi(s.NumPara),
			NumMissing: mi(s.NumMissing),
			RandDropP:  mf(s.RandDropP),
		},
	}
}

// setAxis sets one parameter to its lo (end=0) or hi (end=1) bound.
func (s Space) setAxis(p *core.Params, axis, end int) {
	gi := func(b [2]int) int { return b[end] }
	gf := func(b [2]float64) float64 { return b[end] }
	switch axis {
	case 0:
		p.Instantiation.SizeSlotFills = gi(s.SizeSlotFills)
	case 1:
		p.Instantiation.SizeTables = gi(s.SizeTables)
	case 2:
		p.Instantiation.GroupByP = gf(s.GroupByP)
	case 3:
		p.Instantiation.JoinBoost = gf(s.JoinBoost)
	case 4:
		p.Instantiation.AggBoost = gf(s.AggBoost)
	case 5:
		p.Instantiation.NestBoost = gf(s.NestBoost)
	case 6:
		p.Augmentation.SizePara = gi(s.SizePara)
	case 7:
		p.Augmentation.NumPara = gi(s.NumPara)
	case 8:
		p.Augmentation.NumMissing = gi(s.NumMissing)
	case 9:
		p.Augmentation.RandDropP = gf(s.RandDropP)
	}
}

// Stats summarizes converged trial accuracies: count, min, max, mean,
// standard deviation.
func Stats(trials []Trial) (n int, min, max, mean, std float64) {
	min = math.Inf(1)
	max = math.Inf(-1)
	sum := 0.0
	for _, t := range trials {
		if !t.Converged {
			continue
		}
		n++
		sum += t.Accuracy
		if t.Accuracy < min {
			min = t.Accuracy
		}
		if t.Accuracy > max {
			max = t.Accuracy
		}
	}
	if n == 0 {
		return 0, 0, 0, 0, 0
	}
	mean = sum / float64(n)
	varsum := 0.0
	for _, t := range trials {
		if t.Converged {
			d := t.Accuracy - mean
			varsum += d * d
		}
	}
	std = math.Sqrt(varsum / float64(n))
	return n, min, max, mean, std
}

// Histogram bins converged accuracies into nbins equal-width buckets
// over [min, max] (the paper's Figure 4 rendering).
type HistogramBin struct {
	Lo, Hi float64
	Count  int
}

// Histogram builds the accuracy histogram.
func Histogram(trials []Trial, nbins int) []HistogramBin {
	n, min, max, _, _ := Stats(trials)
	if n == 0 || nbins <= 0 {
		return nil
	}
	if max == min {
		max = min + 1e-9
	}
	width := (max - min) / float64(nbins)
	bins := make([]HistogramBin, nbins)
	for i := range bins {
		bins[i] = HistogramBin{Lo: min + float64(i)*width, Hi: min + float64(i+1)*width}
	}
	for _, t := range trials {
		if !t.Converged {
			continue
		}
		idx := int((t.Accuracy - min) / width)
		if idx >= nbins {
			idx = nbins - 1
		}
		bins[idx].Count++
	}
	return bins
}

// FormatHistogram renders the histogram as a text chart.
func FormatHistogram(bins []HistogramBin) string {
	out := ""
	for _, b := range bins {
		bar := ""
		for i := 0; i < b.Count; i++ {
			bar += "█"
		}
		out += fmt.Sprintf("%.3f-%.3f | %-s (%d)\n", b.Lo, b.Hi, bar, b.Count)
	}
	return out
}
