package hyperopt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestSampleWithinBounds(t *testing.T) {
	space := DefaultSpace()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := space.Sample(rng)
		inst := p.Instantiation
		aug := p.Augmentation
		checks := []struct {
			name string
			v    float64
			lo   float64
			hi   float64
		}{
			{"sizeSlotFills", float64(inst.SizeSlotFills), float64(space.SizeSlotFills[0]), float64(space.SizeSlotFills[1])},
			{"sizeTables", float64(inst.SizeTables), float64(space.SizeTables[0]), float64(space.SizeTables[1])},
			{"groupByP", inst.GroupByP, space.GroupByP[0], space.GroupByP[1]},
			{"joinBoost", inst.JoinBoost, space.JoinBoost[0], space.JoinBoost[1]},
			{"aggBoost", inst.AggBoost, space.AggBoost[0], space.AggBoost[1]},
			{"nestBoost", inst.NestBoost, space.NestBoost[0], space.NestBoost[1]},
			{"sizePara", float64(aug.SizePara), float64(space.SizePara[0]), float64(space.SizePara[1])},
			{"numPara", float64(aug.NumPara), float64(space.NumPara[0]), float64(space.NumPara[1])},
			{"numMissing", float64(aug.NumMissing), float64(space.NumMissing[0]), float64(space.NumMissing[1])},
			{"randDropP", aug.RandDropP, space.RandDropP[0], space.RandDropP[1]},
		}
		for _, c := range checks {
			if c.v < c.lo || c.v > c.hi {
				t.Fatalf("%s = %v outside [%v, %v]", c.name, c.v, c.lo, c.hi)
			}
		}
	}
}

func TestRandomSearchSortsConvergedFirst(t *testing.T) {
	// Objective: accuracy = groupByP; fails when sizePara == 0.
	obj := func(p core.Params) (float64, bool) {
		if p.Augmentation.SizePara == 0 {
			return 0, false
		}
		return p.Instantiation.GroupByP, true
	}
	trials := RandomSearch(DefaultSpace(), 40, 3, obj)
	if len(trials) != 40 {
		t.Fatalf("trials = %d", len(trials))
	}
	seenFailed := false
	prev := math.Inf(1)
	for _, tr := range trials {
		if !tr.Converged {
			seenFailed = true
			continue
		}
		if seenFailed {
			t.Fatal("converged trial after a failed one: not sorted")
		}
		if tr.Accuracy > prev {
			t.Fatal("converged trials not sorted by accuracy desc")
		}
		prev = tr.Accuracy
	}
}

func TestRandomSearchDeterminism(t *testing.T) {
	obj := func(p core.Params) (float64, bool) { return p.Instantiation.GroupByP, true }
	a := RandomSearch(DefaultSpace(), 10, 7, obj)
	b := RandomSearch(DefaultSpace(), 10, 7, obj)
	for i := range a {
		if a[i].Accuracy != b[i].Accuracy {
			t.Fatal("random search not deterministic per seed")
		}
	}
}

func TestGridSearchCoversAxes(t *testing.T) {
	var seen []core.Params
	obj := func(p core.Params) (float64, bool) {
		seen = append(seen, p)
		return 0.5, true
	}
	trials := GridSearch(DefaultSpace(), obj)
	if len(trials) != 21 { // midpoint + 10 axes x 2 ends
		t.Fatalf("grid trials = %d", len(trials))
	}
	// The two sizeSlotFills extremes must appear.
	lo, hi := false, false
	for _, p := range seen {
		if p.Instantiation.SizeSlotFills == DefaultSpace().SizeSlotFills[0] {
			lo = true
		}
		if p.Instantiation.SizeSlotFills == DefaultSpace().SizeSlotFills[1] {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatal("grid did not visit sizeSlotFills extremes")
	}
}

func TestStats(t *testing.T) {
	trials := []Trial{
		{Accuracy: 0.4, Converged: true},
		{Accuracy: 0.6, Converged: true},
		{Accuracy: 0.99, Converged: false}, // ignored
	}
	n, min, max, mean, std := Stats(trials)
	if n != 2 || min != 0.4 || max != 0.6 {
		t.Fatalf("stats = %d %v %v", n, min, max)
	}
	if math.Abs(mean-0.5) > 1e-12 || math.Abs(std-0.1) > 1e-12 {
		t.Fatalf("mean/std = %v %v", mean, std)
	}
	if n, _, _, _, _ := Stats(nil); n != 0 {
		t.Fatal("empty stats")
	}
}

func TestHistogram(t *testing.T) {
	var trials []Trial
	for _, a := range []float64{0.1, 0.15, 0.2, 0.5, 0.9} {
		trials = append(trials, Trial{Accuracy: a, Converged: true})
	}
	bins := Histogram(trials, 4)
	if len(bins) != 4 {
		t.Fatalf("bins = %d", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 5 {
		t.Fatalf("histogram counts = %d", total)
	}
	if bins[len(bins)-1].Count != 1 { // 0.9 lands in the last bin
		t.Fatalf("last bin = %+v", bins[len(bins)-1])
	}
	out := FormatHistogram(bins)
	if out == "" {
		t.Fatal("empty histogram rendering")
	}
}

// Property: histogram bin edges tile [min, max] without gaps.
func TestHistogramTilesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var trials []Trial
		for i := 0; i < 20; i++ {
			trials = append(trials, Trial{Accuracy: rng.Float64(), Converged: true})
		}
		bins := Histogram(trials, 5)
		for i := 1; i < len(bins); i++ {
			if math.Abs(bins[i].Lo-bins[i-1].Hi) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
