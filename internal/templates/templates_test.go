package templates

import (
	"strings"
	"testing"
)

func TestTemplateCount(t *testing.T) {
	// The paper ships "approximately 100 seed templates".
	if n := Count(); n < 80 {
		t.Fatalf("seed template count = %d; want approximately 100", n)
	}
}

func TestUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, tpl := range All() {
		if tpl.ID == "" {
			t.Fatal("template with empty id")
		}
		if seen[tpl.ID] {
			t.Fatalf("duplicate template id %q", tpl.ID)
		}
		seen[tpl.ID] = true
	}
}

func TestEveryClassRepresented(t *testing.T) {
	for _, c := range Classes {
		if len(ByClass(c)) == 0 {
			t.Errorf("class %s has no templates", c)
		}
	}
	// Key classes need meaningful coverage.
	if len(ByClass(CFilter)) < 10 {
		t.Errorf("filter class too small: %d", len(ByClass(CFilter)))
	}
	if len(ByClass(CJoin)) < 8 {
		t.Errorf("join class too small: %d", len(ByClass(CJoin)))
	}
	if len(ByClass(CNested)) < 8 {
		t.Errorf("nested class too small: %d", len(ByClass(CNested)))
	}
}

func TestNLVariants(t *testing.T) {
	validCats := map[string]bool{"": true, "syntactic": true, "lexical": true, "morphological": true, "semantic": true}
	paraphrased := 0
	for _, tpl := range All() {
		if len(tpl.NL) == 0 {
			t.Fatalf("template %s has no NL variants", tpl.ID)
		}
		if tpl.NL[0].Category != "" {
			t.Errorf("template %s: first NL variant must be the naive one", tpl.ID)
		}
		for _, nl := range tpl.NL {
			if !validCats[nl.Category] {
				t.Errorf("template %s: invalid category %q", tpl.ID, nl.Category)
			}
			if strings.TrimSpace(nl.Text) == "" {
				t.Errorf("template %s: empty NL text", tpl.ID)
			}
		}
		if len(tpl.NL) > 1 {
			paraphrased++
		}
	}
	if paraphrased < Count()/2 {
		t.Errorf("only %d/%d templates have paraphrased variants", paraphrased, Count())
	}
}

func TestSlotsAreKnown(t *testing.T) {
	phraseSlots := map[string]bool{
		"Select": true, "Count": true, "From": true, "Where": true,
		"Equal": true, "Greater": true, "Less": true, "Between": true,
		"Max": true, "Min": true, "Avg": true, "Sum": true, "Group": true,
		"OrderAsc": true, "OrderDesc": true, "And": true, "Or": true,
		"Not": true, "Distinct": true, "Exists": true,
	}
	knownBase := func(name string) bool {
		if name == "t" || name == "u" || name == "t+" || name == "u+" {
			return true
		}
		if phraseSlots[name] {
			return true
		}
		base := strings.TrimPrefix(name, "@")
		base = strings.TrimPrefix(base, "t.")
		base = strings.TrimPrefix(base, "u.")
		_, ok := AttrSlotByName(base)
		return ok
	}
	for _, tpl := range All() {
		for _, slot := range tpl.Slots() {
			if !knownBase(slot) {
				t.Errorf("template %s uses unknown slot {%s}", tpl.ID, slot)
			}
		}
	}
}

func TestUsesTwoTables(t *testing.T) {
	if ByID("select-attr").UsesTwoTables() {
		t.Error("select-attr is single-table")
	}
	if !ByID("join-avg").UsesTwoTables() {
		t.Error("join-avg uses two tables")
	}
	if !ByID("nested-in-fk").UsesTwoTables() {
		t.Error("nested-in-fk uses two tables")
	}
}

func TestRequiredSlots(t *testing.T) {
	req := ByID("join-avg").RequiredSlots()
	names := map[string]bool{}
	for _, r := range req {
		names[r.Name] = true
	}
	if !names["na"] || !names["tb"] {
		t.Fatalf("join-avg required slots = %v", req)
	}
	// Every filter template needs at least one value placeholder slot.
	for _, tpl := range ByClass(CFilter) {
		hasPH := false
		for _, s := range tpl.Slots() {
			if strings.HasPrefix(s, "@") {
				hasPH = true
			}
		}
		if !hasPH {
			t.Errorf("filter template %s has no placeholder slot", tpl.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if ByID("select-all") == nil {
		t.Fatal("select-all missing")
	}
	if ByID("no-such-template") != nil {
		t.Fatal("unknown id should return nil")
	}
}

func TestJoinTemplatesUseJoinPlaceholder(t *testing.T) {
	for _, tpl := range ByClass(CJoin) {
		if !strings.Contains(tpl.SQL, "@JOIN") {
			t.Errorf("join template %s must use FROM @JOIN, got %q", tpl.ID, tpl.SQL)
		}
	}
}

func TestNestedTemplatesNest(t *testing.T) {
	for _, tpl := range ByClass(CNested) {
		if strings.Count(tpl.SQL, "SELECT") < 2 {
			t.Errorf("nested template %s has no subquery: %q", tpl.ID, tpl.SQL)
		}
	}
}
