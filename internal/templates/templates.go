// Package templates holds DBPal's seed NL–SQL template pairs. Each
// template couples one SQL skeleton with one or more NL skeletons
// (the paper's "manually curated paraphrased NL templates"), covering
// the typical classes of SQL queries from simple SELECT-FROM-WHERE to
// group-by aggregation, joins, and simple nested queries.
//
// Template DSL. Slots appear in braces:
//
//	Schema slots (both SQL and NL sides)
//	  {t} {u}            table 1 / table 2 name
//	  {a} {a2} {a3}      any attribute of table 1
//	  {na} {na2}         numeric attribute of table 1
//	  {ta}               text attribute of table 1
//	  {b} {nb} {tb}      any / numeric / text attribute of table 2
//	  {k} {fk}           foreign-key join pair: {t}.{k} = {u}.{fk}
//	  {t.x} {u.x}        qualified rendering of an attribute slot
//	  {@x}               anonymized constant for attribute slot x,
//	                     rendered as @TABLE.COL on both sides
//
//	NL-only slots (filled from the lexicon's slot-fill dictionaries)
//	  {Select} {Count} {From} {Where} {Equal} {Greater} {Less}
//	  {Between} {Max} {Min} {Avg} {Sum} {Group} {OrderAsc}
//	  {OrderDesc} {And} {Or} {Not} {Distinct} {Exists}
//
//	NL modifiers
//	  {t+} {u+}          plural form of the table noun
//
// Composing these templates is the "minimal, one-time overhead" the
// paper describes: they are independent of any target database and are
// instantiated against arbitrary schemas by internal/generator.
package templates

import (
	"fmt"
	"regexp"
	"strings"
)

// Class buckets templates by the SQL pattern family they cover. The
// generator's boost parameters (joinBoost, aggBoost, nestBoost) scale
// instance counts per class.
type Class int

// Template classes.
const (
	CSelect  Class = iota // projection only
	CFilter               // SELECT-FROM-WHERE
	CAgg                  // aggregation (global)
	CGroupBy              // group-by aggregation
	COrder                // ordering / top-k
	CJoin                 // multi-table via @JOIN
	CNested               // nested subqueries
)

// String names the class.
func (c Class) String() string {
	switch c {
	case CSelect:
		return "select"
	case CFilter:
		return "filter"
	case CAgg:
		return "agg"
	case CGroupBy:
		return "groupby"
	case COrder:
		return "order"
	case CJoin:
		return "join"
	case CNested:
		return "nested"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists all template classes.
var Classes = []Class{CSelect, CFilter, CAgg, CGroupBy, COrder, CJoin, CNested}

// NL is one natural-language skeleton for a SQL template. Category
// tags the paraphrasing technique of non-naive variants (following the
// paraphrase typology the paper references): "", i.e. naive direct
// translation, or "syntactic", "lexical", "morphological", "semantic".
type NL struct {
	Text     string
	Category string
}

// Template is one seed NL–SQL template pair (one SQL skeleton, several
// NL skeletons).
type Template struct {
	ID    string
	Class Class
	SQL   string
	NL    []NL
}

var slotRe = regexp.MustCompile(`\{[^{}]+\}`)

// Slots returns the distinct slot names appearing in the template's
// SQL and NL sides (without braces), in first-appearance order.
func (t *Template) Slots() []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		for _, m := range slotRe.FindAllString(s, -1) {
			name := m[1 : len(m)-1]
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	add(t.SQL)
	for _, nl := range t.NL {
		add(nl.Text)
	}
	return out
}

// attrSlots maps attribute-slot names to which table they bind to
// (1 or 2) and the required column kind.
type AttrKind int

// Attribute slot kinds.
const (
	AnyAttr AttrKind = iota
	NumAttr
	TextAttr
	KeyAttr // join-pair column
)

// AttrSlot describes one schema attribute slot.
type AttrSlot struct {
	Name  string
	Table int // 1 or 2
	Kind  AttrKind
}

// KnownAttrSlots enumerates the attribute slots of the DSL.
var KnownAttrSlots = []AttrSlot{
	{"a", 1, AnyAttr}, {"a2", 1, AnyAttr}, {"a3", 1, AnyAttr},
	{"na", 1, NumAttr}, {"na2", 1, NumAttr},
	{"ta", 1, TextAttr}, {"ta2", 1, TextAttr},
	{"b", 2, AnyAttr}, {"b2", 2, AnyAttr},
	{"nb", 2, NumAttr}, {"tb", 2, TextAttr},
	{"k", 1, KeyAttr}, {"fk", 2, KeyAttr},
}

// AttrSlotByName resolves an attribute slot name.
func AttrSlotByName(name string) (AttrSlot, bool) {
	for _, s := range KnownAttrSlots {
		if s.Name == name {
			return s, true
		}
	}
	return AttrSlot{}, false
}

// UsesTwoTables reports whether the template references table 2 (join
// or cross-table nested templates).
func (t *Template) UsesTwoTables() bool {
	for _, slot := range t.Slots() {
		name := slot
		name = strings.TrimPrefix(name, "@")
		name = strings.TrimPrefix(name, "t.")
		if strings.HasPrefix(name, "u.") {
			return true
		}
		if name == "u" || name == "u+" {
			return true
		}
		if as, ok := AttrSlotByName(name); ok && as.Table == 2 {
			return true
		}
	}
	return false
}

// RequiredSlots returns the attribute slots the template binds,
// deduplicated, resolving qualified ({t.a}) and value ({@a}) forms to
// their base slot.
func (t *Template) RequiredSlots() []AttrSlot {
	seen := map[string]bool{}
	var out []AttrSlot
	for _, slot := range t.Slots() {
		name := strings.TrimPrefix(slot, "@")
		name = strings.TrimPrefix(name, "t.")
		name = strings.TrimPrefix(name, "u.")
		as, ok := AttrSlotByName(name)
		if !ok {
			continue
		}
		if !seen[as.Name] {
			seen[as.Name] = true
			out = append(out, as)
		}
	}
	return out
}
