package sqlast

import (
	"strings"
	"testing"
)

func TestParseBasics(t *testing.T) {
	q := MustParse("SELECT name, AVG(age) FROM patients WHERE diagnosis = 'flu' GROUP BY name HAVING COUNT(*) > 2 ORDER BY AVG(age) DESC LIMIT 3")
	if len(q.Select) != 2 {
		t.Fatalf("select items = %d", len(q.Select))
	}
	if q.Select[1].Agg != AggAvg {
		t.Fatalf("second item agg = %v", q.Select[1].Agg)
	}
	if len(q.From.Tables) != 1 || q.From.Tables[0] != "patients" {
		t.Fatalf("from = %v", q.From)
	}
	cmp, ok := q.Where.(Comparison)
	if !ok || cmp.Op != OpEq {
		t.Fatalf("where = %#v", q.Where)
	}
	if v, ok := cmp.Right.(Value); !ok || v.Str != "flu" {
		t.Fatalf("where rhs = %#v", cmp.Right)
	}
	if len(q.GroupBy) != 1 || q.Having == nil {
		t.Fatalf("groupby/having missing")
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc || q.OrderBy[0].Item.Agg != AggAvg {
		t.Fatalf("orderby = %+v", q.OrderBy)
	}
	if q.Limit != 3 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseOperators(t *testing.T) {
	ops := map[string]CmpOp{
		"=": OpEq, "!=": OpNe, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	}
	for text, want := range ops {
		q := MustParse("SELECT a FROM t WHERE a " + text + " 1")
		cmp := q.Where.(Comparison)
		if cmp.Op != want {
			t.Fatalf("op %q parsed as %v", text, cmp.Op)
		}
	}
}

func TestParsePlaceholders(t *testing.T) {
	q := MustParse("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
	cmp := q.Where.(Comparison)
	ph, ok := cmp.Right.(Placeholder)
	if !ok || ph.Name != "PATIENTS.AGE" {
		t.Fatalf("placeholder = %#v", cmp.Right)
	}
	q2 := MustParse("SELECT a FROM @JOIN WHERE t.b = 1")
	if !q2.From.JoinPlaceholder {
		t.Fatal("FROM @JOIN not recognized")
	}
}

func TestParseLogic(t *testing.T) {
	q := MustParse("SELECT a FROM t WHERE x = 1 AND (y = 2 OR z = 3)")
	l, ok := q.Where.(Logic)
	if !ok || l.Op != OpAnd {
		t.Fatalf("top = %#v", q.Where)
	}
	inner, ok := l.Right.(Logic)
	if !ok || inner.Op != OpOr {
		t.Fatalf("inner = %#v", l.Right)
	}
	// Precedence: AND binds tighter than OR.
	q2 := MustParse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	l2 := q2.Where.(Logic)
	if l2.Op != OpOr {
		t.Fatalf("precedence wrong: top = %v", l2.Op)
	}
}

func TestParseNot(t *testing.T) {
	q := MustParse("SELECT a FROM t WHERE NOT (x = 1)")
	if _, ok := q.Where.(Not); !ok {
		t.Fatalf("NOT not parsed: %#v", q.Where)
	}
	q2 := MustParse("SELECT a FROM t WHERE x NOT LIKE 'foo%'")
	n, ok := q2.Where.(Not)
	if !ok {
		t.Fatalf("NOT LIKE = %#v", q2.Where)
	}
	if c := n.Inner.(Comparison); c.Op != OpLike {
		t.Fatalf("inner op = %v", c.Op)
	}
}

func TestParseSubqueries(t *testing.T) {
	q := MustParse("SELECT a FROM t WHERE k IN (SELECT fk FROM u WHERE b = 1)")
	in, ok := q.Where.(InSubquery)
	if !ok || in.Negated {
		t.Fatalf("in = %#v", q.Where)
	}
	q2 := MustParse("SELECT a FROM t WHERE k NOT IN (SELECT fk FROM u)")
	if in2 := q2.Where.(InSubquery); !in2.Negated {
		t.Fatal("NOT IN lost negation")
	}
	q3 := MustParse("SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u)")
	if ex := q3.Where.(Exists); !ex.Negated {
		t.Fatal("NOT EXISTS lost negation")
	}
	q4 := MustParse("SELECT a FROM t WHERE n = (SELECT MAX(n) FROM t)")
	cmp := q4.Where.(Comparison)
	if _, ok := cmp.Right.(ScalarSubquery); !ok {
		t.Fatalf("scalar subquery = %#v", cmp.Right)
	}
}

func TestParseBetweenAndLike(t *testing.T) {
	q := MustParse("SELECT a FROM t WHERE n BETWEEN 1 AND 5 AND s LIKE '%x%'")
	conj := Conjuncts(q.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if _, ok := conj[0].(Between); !ok {
		t.Fatalf("first = %#v", conj[0])
	}
	if c := conj[1].(Comparison); c.Op != OpLike {
		t.Fatalf("second op = %v", c.Op)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q := MustParse("SELECT a FROM t WHERE s = 'it''s'")
	v := q.Where.(Comparison).Right.(Value)
	if v.Str != "it's" {
		t.Fatalf("escaped string = %q", v.Str)
	}
	if !strings.Contains(q.String(), "'it''s'") {
		t.Fatalf("re-render = %q", q.String())
	}
}

func TestParseQualifiedStar(t *testing.T) {
	q := MustParse("SELECT t.* FROM t, u WHERE t.id = u.tid")
	if !q.Select[0].Star || q.Select[0].Col.Table != "t" {
		t.Fatalf("t.* = %+v", q.Select[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a",
		"SELECT a FROM t WHERE a =",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t ORDER age",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t trailing garbage",
		"INSERT INTO t VALUES (1)",
		"SELECT a FROM t WHERE a = 1 AND",
		"SELECT a FROM t WHERE a IN (SELECT b FROM u",
		"SELECT COUNT( FROM t",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseSemicolon(t *testing.T) {
	if _, err := Parse("SELECT a FROM t;"); err != nil {
		t.Fatalf("trailing semicolon rejected: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	q := MustParse("SELECT a FROM t WHERE x = 1 AND k IN (SELECT f FROM u)")
	c := q.Clone()
	c.Select[0].Col.Column = "changed"
	c.From.Tables[0] = "changed"
	if q.Select[0].Col.Column == "changed" || q.From.Tables[0] == "changed" {
		t.Fatal("Clone shares state with original")
	}
	if q.String() == c.String() {
		t.Fatal("mutated clone should differ")
	}
}

func TestColumnsCollection(t *testing.T) {
	q := MustParse("SELECT a, MAX(b) FROM t WHERE c = 1 AND k IN (SELECT f FROM u WHERE g > 2) GROUP BY a HAVING COUNT(*) > 1 ORDER BY b")
	cols := q.Columns()
	want := map[string]bool{"a": true, "b": true, "c": true, "k": true, "f": true, "g": true}
	if len(cols) != len(want) {
		t.Fatalf("columns = %v", cols)
	}
	for _, c := range cols {
		if !want[c.Column] {
			t.Fatalf("unexpected column %v", c)
		}
	}
}

func TestHasHelpers(t *testing.T) {
	if !MustParse("SELECT a FROM t WHERE n = (SELECT MAX(n) FROM t)").HasSubquery() {
		t.Fatal("HasSubquery false negative")
	}
	if MustParse("SELECT a FROM t").HasSubquery() {
		t.Fatal("HasSubquery false positive")
	}
	if !MustParse("SELECT AVG(a) FROM t").HasAggregate() {
		t.Fatal("HasAggregate false negative")
	}
	if MustParse("SELECT a FROM t").HasAggregate() {
		t.Fatal("HasAggregate false positive")
	}
}
