package sqlast

import "testing"

func TestSmoke(t *testing.T) {
	for _, s := range []string{
		"SELECT name FROM patients WHERE age = @PATIENTS.AGE",
		"SELECT * FROM city WHERE city.state_name = 'Massachusetts'",
		"SELECT state, AVG(population) FROM cities GROUP BY state",
		"SELECT AVG(patient.age) FROM @JOIN WHERE doctor.name = @DOCTOR.NAME",
		"SELECT name FROM mountain WHERE height = (SELECT MAX(height) FROM mountain WHERE state = @STATE.NAME)",
		"SELECT COUNT(*) FROM t WHERE a = 1 AND (b = 2 OR c = 'x') ORDER BY d DESC LIMIT 5",
		"SELECT name FROM p WHERE id IN (SELECT pid FROM visits WHERE length_of_stay > 10)",
		"SELECT COUNT(DISTINCT diagnosis) FROM patients",
		"SELECT name FROM patients WHERE age BETWEEN 20 AND 30",
		"SELECT name FROM p WHERE NOT EXISTS (SELECT * FROM v WHERE v.pid = p.id)",
		"SELECT t.x, u.y FROM t, u WHERE t.id = u.tid AND t.x != 'a''b'",
		"SELECT state, COUNT(*) FROM cities GROUP BY state HAVING COUNT(*) > 3",
	} {
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		r, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse %q -> %q: %v", s, q.String(), err)
		}
		if q.Canonical() != r.Canonical() {
			t.Fatalf("roundtrip mismatch %q vs %q", q.Canonical(), r.Canonical())
		}
		q2, err := ParseTokens(q.Tokens())
		if err != nil {
			t.Fatalf("tokens %v: %v", q.Tokens(), err)
		}
		if q2.Canonical() != q.Canonical() {
			t.Fatalf("token roundtrip %q", s)
		}
		t.Logf("%s => pattern %s diff %s", s, q.Pattern(), QueryDifficulty(q))
	}
}
