package sqlast

import (
	"fmt"
	"strings"
)

// Pattern returns the structural signature of the query: every table is
// replaced by T, every column by C, and every constant or placeholder
// by ?. Aggregates, logical structure, grouping, ordering, limits, and
// nesting survive. Queries with the same Pattern belong to the same
// "query pattern" in the sense of the paper's Table 4 (pattern-coverage
// breakdown).
func (q *Query) Pattern() string {
	c := q.Clone()
	patternQuery(c)
	return c.String()
}

func patternQuery(q *Query) {
	for i := range q.Select {
		q.Select[i].Col = patternCol(q.Select[i].Col)
	}
	if q.From.JoinPlaceholder {
		// The @JOIN placeholder and a multi-table FROM are the same
		// pattern once resolved; normalize to a single J marker.
		q.From = From{Tables: []string{"J"}}
	} else if len(q.From.Tables) > 1 {
		q.From = From{Tables: []string{"J"}}
	} else {
		q.From = From{Tables: []string{"T"}}
	}
	q.Where = patternExpr(q.Where)
	for i := range q.GroupBy {
		q.GroupBy[i] = patternCol(q.GroupBy[i])
	}
	q.Having = patternExpr(q.Having)
	for i := range q.OrderBy {
		q.OrderBy[i].Item.Col = patternCol(q.OrderBy[i].Item.Col)
	}
	// LIMIT 1 (argmax) is its own pattern; any larger constant is the
	// generic top-k pattern.
	if q.Limit > 1 {
		q.Limit = 2
	}
}

func patternCol(c ColumnRef) ColumnRef {
	if c.Column == "" {
		return c
	}
	if c.Column == "*" {
		return ColumnRef{Column: "*"}
	}
	return ColumnRef{Column: "C"}
}

func patternExpr(e Expr) Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case Logic:
		return Logic{Op: v.Op, Left: patternExpr(v.Left), Right: patternExpr(v.Right)}
	case Not:
		return Not{Inner: patternExpr(v.Inner)}
	case Comparison:
		return Comparison{Left: patternCol(v.Left), Op: patternOp(v.Op), Right: patternOperand(v.Right)}
	case Between:
		return Between{Col: patternCol(v.Col), Lo: patternOperand(v.Lo), Hi: patternOperand(v.Hi)}
	case InSubquery:
		sub := v.Query.Clone()
		patternQuery(sub)
		return InSubquery{Col: patternCol(v.Col), Query: sub, Negated: v.Negated}
	case Exists:
		sub := v.Query.Clone()
		patternQuery(sub)
		return Exists{Query: sub, Negated: v.Negated}
	case HavingCond:
		item := v.Item
		item.Col = patternCol(item.Col)
		return HavingCond{Item: item, Op: patternOp(v.Op), Right: patternOperand(v.Right)}
	default:
		return e
	}
}

// patternOp collapses operator direction: all inequality comparisons
// are one pattern class, equality/inequality another, LIKE its own.
func patternOp(op CmpOp) CmpOp {
	switch op {
	case OpEq, OpNe:
		return OpEq
	case OpLike:
		return OpLike
	default:
		return OpGt
	}
}

func patternOperand(o Operand) Operand {
	switch v := o.(type) {
	case Value, Placeholder:
		return Placeholder{Name: "V"}
	case ColOperand:
		return ColOperand{Col: patternCol(v.Col)}
	case ScalarSubquery:
		sub := v.Query.Clone()
		patternQuery(sub)
		return ScalarSubquery{Query: sub}
	default:
		return o
	}
}

// Difficulty is the Spider-style complexity bucket of a query.
type Difficulty int

// Difficulty buckets, in increasing order.
const (
	Easy Difficulty = iota
	Medium
	Hard
	VeryHard
)

// String returns the bucket name as the paper spells it.
func (d Difficulty) String() string {
	switch d {
	case Easy:
		return "Easy"
	case Medium:
		return "Medium"
	case Hard:
		return "Hard"
	case VeryHard:
		return "Very Hard"
	default:
		return fmt.Sprintf("Difficulty(%d)", int(d))
	}
}

// Difficulties lists all buckets in order for reporting.
var Difficulties = []Difficulty{Easy, Medium, Hard, VeryHard}

// QueryDifficulty classifies a query into the Spider-style buckets by
// counting SQL components over the whole query including subqueries,
// mirroring the benchmark's heuristic: more components (predicates,
// grouping, ordering, joins, aggregates, disjunction) push a query up
// a bucket, and nesting pushes it to at least Hard (Very Hard when
// combined with other components).
func QueryDifficulty(q *Query) Difficulty {
	score := 0
	WalkQueries(q, func(sub *Query) {
		score += len(Conjuncts(sub.Where))
		if len(sub.GroupBy) > 0 {
			score += 2
		}
		if sub.Having != nil {
			score++
		}
		if len(sub.OrderBy) > 0 {
			score++
		}
		if sub.Limit >= 0 {
			score++
		}
		for _, s := range sub.Select {
			if s.Agg != AggNone {
				score++
			}
		}
		if len(sub.Select) > 2 {
			score++
		}
		joinTables := len(sub.From.Tables)
		if sub.From.JoinPlaceholder {
			joinTables = 2
		}
		if joinTables > 1 {
			score += 2 * (joinTables - 1)
		}
		if hasOr(sub.Where) || hasOr(sub.Having) {
			score++
		}
	})
	nested := q.HasSubquery()
	switch {
	case nested && score >= 3:
		return VeryHard
	case nested:
		return Hard
	case score >= 6:
		return VeryHard
	case score >= 4:
		return Hard
	case score >= 2:
		return Medium
	default:
		return Easy
	}
}

func hasOr(e Expr) bool {
	switch v := e.(type) {
	case Logic:
		if v.Op == OpOr {
			return true
		}
		return hasOr(v.Left) || hasOr(v.Right)
	case Not:
		return hasOr(v.Inner)
	default:
		return false
	}
}

// Tokens linearizes the query into the token sequence consumed and
// produced by the neural translators. Identifiers keep their case;
// punctuation and keywords are separate tokens; placeholders keep
// their leading '@'. The sequence round-trips through ParseTokens.
func (q *Query) Tokens() []string {
	toks, err := lex(q.String())
	if err != nil {
		// The printer only emits lexable text.
		panic(fmt.Sprintf("sqlast: Tokens: internal error lexing %q: %v", q.String(), err))
	}
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		switch t.kind {
		case tokEOF:
		case tokPlaceholder:
			out = append(out, "@"+t.text)
		case tokString:
			out = append(out, "'"+strings.ReplaceAll(t.text, "'", "''")+"'")
		default:
			out = append(out, t.text)
		}
	}
	return out
}

// ParseTokens reassembles a token sequence produced by Tokens (or by a
// model decoding step) into a query.
func ParseTokens(tokens []string) (*Query, error) {
	return Parse(strings.Join(tokens, " "))
}
