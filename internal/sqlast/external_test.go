package sqlast_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/patients"
	"repro/internal/spider"
	"repro/internal/sqlast"
)

// TestSpiderGoldRoundTrip fuzzes the parser/printer with every gold
// query of a synthetic Spider build: parse -> print -> parse must be a
// canonical fixed point, and token linearization must round-trip.
func TestSpiderGoldRoundTrip(t *testing.T) {
	d := spider.Build(spider.Config{TrainPerSchema: 60, TestPerSchema: 40, Seed: 21})
	all := append(append([]spider.Question{}, d.Train...), d.Test...)
	for _, q := range all {
		p1, err := sqlast.Parse(q.SQL)
		if err != nil {
			t.Fatalf("parse %q: %v", q.SQL, err)
		}
		p2, err := sqlast.Parse(p1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", p1.String(), err)
		}
		if !sqlast.EqualCanonical(p1, p2) {
			t.Fatalf("print/parse not a fixed point for %q", q.SQL)
		}
		p3, err := sqlast.ParseTokens(p1.Tokens())
		if err != nil {
			t.Fatalf("token roundtrip %q: %v", q.SQL, err)
		}
		if !sqlast.EqualCanonical(p1, p3) {
			t.Fatalf("token roundtrip changed semantics for %q", q.SQL)
		}
	}
}

// TestPipelineGoldRoundTrip does the same over a DBPal-generated
// corpus (placeholders, @JOIN, nested templates).
func TestPipelineGoldRoundTrip(t *testing.T) {
	p := core.New(patients.Schema(), core.DefaultParams(), 31)
	pairs := p.Run()
	if len(pairs) > 3000 {
		pairs = pairs[:3000]
	}
	for _, pr := range pairs {
		q, err := sqlast.Parse(pr.SQL)
		if err != nil {
			t.Fatalf("parse %q: %v", pr.SQL, err)
		}
		q2, err := sqlast.ParseTokens(q.Tokens())
		if err != nil {
			t.Fatalf("token roundtrip %q: %v", pr.SQL, err)
		}
		if !sqlast.EqualCanonical(q, q2) {
			t.Fatalf("roundtrip changed semantics for %q", pr.SQL)
		}
	}
}

// TestPatientsGoldPatternsStable pins the pattern signatures of a few
// benchmark queries so accidental pattern-definition changes surface.
func TestPatientsGoldPatternsStable(t *testing.T) {
	cases := map[string]string{
		"SELECT * FROM patients WHERE age = 80":                       "SELECT * FROM T WHERE C = @V",
		"SELECT COUNT(*) FROM patients":                               "SELECT COUNT(*) FROM T",
		"SELECT name FROM patients ORDER BY age DESC LIMIT 1":         "SELECT C FROM T ORDER BY C DESC LIMIT 1",
		"SELECT diagnosis, COUNT(*) FROM patients GROUP BY diagnosis": "SELECT C, COUNT(*) FROM T GROUP BY C",
	}
	for sql, want := range cases {
		if got := sqlast.MustParse(sql).Pattern(); got != want {
			t.Errorf("Pattern(%q) = %q, want %q", sql, got, want)
		}
	}
}
