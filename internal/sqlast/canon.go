package sqlast

import (
	"sort"
	"strings"
)

// Canonical returns a normalized rendering of the query used for
// exact-match accuracy (the Spider-style metric): identifiers and
// placeholders are case-folded, top-level AND conjuncts of WHERE and
// HAVING are sorted, select/group/order lists keep their order (it is
// semantically significant), and ASC markers are implied. Two queries
// are "exact match equal" iff their Canonical strings are equal.
func (q *Query) Canonical() string {
	c := q.Clone()
	canonQuery(c)
	return c.String()
}

// EqualCanonical reports whether two queries are equal under Canonical
// normalization. Either may be nil.
func EqualCanonical(a, b *Query) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Canonical() == b.Canonical()
}

func canonQuery(q *Query) {
	for i := range q.Select {
		q.Select[i].Col = canonCol(q.Select[i].Col)
	}
	for i, t := range q.From.Tables {
		q.From.Tables[i] = strings.ToLower(t)
	}
	sort.Strings(q.From.Tables)
	q.Where = canonExpr(q.Where)
	q.Where = sortConjuncts(q.Where)
	for i := range q.GroupBy {
		q.GroupBy[i] = canonCol(q.GroupBy[i])
	}
	q.Having = canonExpr(q.Having)
	q.Having = sortConjuncts(q.Having)
	for i := range q.OrderBy {
		q.OrderBy[i].Item.Col = canonCol(q.OrderBy[i].Item.Col)
	}
}

func canonCol(c ColumnRef) ColumnRef {
	return ColumnRef{Table: strings.ToLower(c.Table), Column: strings.ToLower(c.Column)}
}

func canonExpr(e Expr) Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case Logic:
		return Logic{Op: v.Op, Left: canonExpr(v.Left), Right: canonExpr(v.Right)}
	case Not:
		return Not{Inner: canonExpr(v.Inner)}
	case Comparison:
		return Comparison{Left: canonCol(v.Left), Op: v.Op, Right: canonOperand(v.Right)}
	case Between:
		return Between{Col: canonCol(v.Col), Lo: canonOperand(v.Lo), Hi: canonOperand(v.Hi)}
	case InSubquery:
		sub := v.Query.Clone()
		canonQuery(sub)
		return InSubquery{Col: canonCol(v.Col), Query: sub, Negated: v.Negated}
	case Exists:
		sub := v.Query.Clone()
		canonQuery(sub)
		return Exists{Query: sub, Negated: v.Negated}
	case HavingCond:
		item := v.Item
		item.Col = canonCol(item.Col)
		return HavingCond{Item: item, Op: v.Op, Right: canonOperand(v.Right)}
	default:
		return e
	}
}

func canonOperand(o Operand) Operand {
	switch v := o.(type) {
	case Placeholder:
		return Placeholder{Name: strings.ToUpper(v.Name)}
	case ColOperand:
		return ColOperand{Col: canonCol(v.Col)}
	case ScalarSubquery:
		sub := v.Query.Clone()
		canonQuery(sub)
		return ScalarSubquery{Query: sub}
	default:
		return o
	}
}

// sortConjuncts sorts top-level AND conjuncts by their rendering so
// that "a AND b" equals "b AND a" under canonical comparison.
func sortConjuncts(e Expr) Expr {
	if e == nil {
		return nil
	}
	parts := Conjuncts(e)
	if len(parts) <= 1 {
		return e
	}
	sort.Slice(parts, func(i, j int) bool {
		return parts[i].String() < parts[j].String()
	})
	return AndAll(parts)
}
