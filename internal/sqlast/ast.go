// Package sqlast defines the SQL subset spoken by the DBPal pipeline:
// an AST, a tokenizer and recursive-descent parser, a deterministic
// printer, a canonicalizer used for exact-match accuracy, structural
// pattern signatures (for the pattern-coverage analysis in the paper's
// Table 4), and Spider-style difficulty scoring.
//
// The subset covers what the paper's seed templates emit:
//
//	SELECT [DISTINCT] item, ...
//	FROM table[, table...] | @JOIN
//	[WHERE cond]
//	[GROUP BY col, ...]
//	[HAVING cond]
//	[ORDER BY item [ASC|DESC], ...]
//	[LIMIT n]
//
// with aggregates COUNT/SUM/AVG/MIN/MAX, AND/OR/NOT conditions,
// comparison and LIKE and BETWEEN predicates, column-to-column join
// predicates, uncorrelated IN/EXISTS subqueries, and scalar-aggregate
// subqueries. Constants may be placeholders (@TABLE.COL) per the
// paper's anonymization scheme, and the FROM clause may be the @JOIN
// placeholder that the post-processor later resolves to a join path.
package sqlast

import (
	"fmt"
	"strconv"
	"strings"
)

// AggFunc enumerates the supported aggregate functions.
type AggFunc int

// Aggregate functions. AggNone marks a plain column reference.
const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling of the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggNone:
		return ""
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// ParseAgg maps an aggregate name (any case) to its AggFunc.
func ParseAgg(s string) (AggFunc, bool) {
	switch strings.ToUpper(s) {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "AVG":
		return AggAvg, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	default:
		return AggNone, false
	}
}

// ColumnRef names a column, optionally qualified by table.
type ColumnRef struct {
	Table  string // may be empty
	Column string
}

// String renders the reference as table.column or column.
func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// SelectItem is one projection in the SELECT list: *, a column, or an
// aggregate over a column or *.
type SelectItem struct {
	Star     bool    // plain * (only with Agg==AggNone) or COUNT(*)
	Agg      AggFunc // AggNone for a bare column
	Distinct bool    // COUNT(DISTINCT col)
	Col      ColumnRef
}

// String renders the select item.
func (s SelectItem) String() string {
	inner := s.Col.String()
	if s.Star {
		inner = "*"
	}
	if s.Agg == AggNone {
		return inner
	}
	if s.Distinct {
		return fmt.Sprintf("%s(DISTINCT %s)", s.Agg, inner)
	}
	return fmt.Sprintf("%s(%s)", s.Agg, inner)
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Item SelectItem
	Desc bool
}

// String renders the order item.
func (o OrderItem) String() string {
	if o.Desc {
		return o.Item.String() + " DESC"
	}
	return o.Item.String() + " ASC"
}

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
)

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLike:
		return "LIKE"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(o))
	}
}

// Negate returns the complementary operator (LIKE negates to itself;
// callers wrap it in NOT instead).
func (o CmpOp) Negate() CmpOp {
	switch o {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	default:
		return o
	}
}

// Operand is the right-hand side of a comparison: a literal, a
// placeholder, a column, or a scalar subquery.
type Operand interface {
	isOperand()
	String() string
}

// Value is a literal constant.
type Value struct {
	IsNum bool
	Num   float64
	Str   string
}

func (Value) isOperand() {}

// NumValue builds a numeric literal.
func NumValue(n float64) Value { return Value{IsNum: true, Num: n} }

// StrValue builds a string literal.
func StrValue(s string) Value { return Value{Str: s} }

// String renders the literal (numbers bare, strings single-quoted with
// quote doubling).
func (v Value) String() string {
	if v.IsNum {
		return strconv.FormatFloat(v.Num, 'f', -1, 64)
	}
	return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
}

// Placeholder is an anonymized constant such as @PATIENTS.AGE. Name
// excludes the leading '@'.
type Placeholder struct {
	Name string
}

func (Placeholder) isOperand() {}

// String renders the placeholder with its leading '@'.
func (p Placeholder) String() string { return "@" + p.Name }

// ColOperand compares against another column (join predicates).
type ColOperand struct {
	Col ColumnRef
}

func (ColOperand) isOperand() {}

// String renders the column reference.
func (c ColOperand) String() string { return c.Col.String() }

// ScalarSubquery compares against the single value produced by an
// aggregate subquery, e.g. height = (SELECT MAX(height) FROM m).
type ScalarSubquery struct {
	Query *Query
}

func (ScalarSubquery) isOperand() {}

// String renders the parenthesized subquery.
func (s ScalarSubquery) String() string { return "(" + s.Query.String() + ")" }

// Expr is a boolean condition tree node.
type Expr interface {
	isExpr()
	String() string
}

// LogicOp is AND or OR.
type LogicOp int

// Logical connectives.
const (
	OpAnd LogicOp = iota
	OpOr
)

// String returns the SQL spelling of the connective.
func (o LogicOp) String() string {
	if o == OpOr {
		return "OR"
	}
	return "AND"
}

// Logic combines two conditions with AND/OR.
type Logic struct {
	Op          LogicOp
	Left, Right Expr
}

func (Logic) isExpr() {}

// String renders the combination, parenthesizing OR under AND.
func (l Logic) String() string {
	left := l.Left.String()
	right := l.Right.String()
	if l.Op == OpAnd {
		if inner, ok := l.Left.(Logic); ok && inner.Op == OpOr {
			left = "(" + left + ")"
		}
		if inner, ok := l.Right.(Logic); ok && inner.Op == OpOr {
			right = "(" + right + ")"
		}
	}
	return left + " " + l.Op.String() + " " + right
}

// Not negates a condition.
type Not struct {
	Inner Expr
}

func (Not) isExpr() {}

// String renders NOT (inner).
func (n Not) String() string { return "NOT (" + n.Inner.String() + ")" }

// Comparison is col op operand.
type Comparison struct {
	Left  ColumnRef
	Op    CmpOp
	Right Operand
}

func (Comparison) isExpr() {}

// String renders the comparison.
func (c Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Between is col BETWEEN lo AND hi.
type Between struct {
	Col    ColumnRef
	Lo, Hi Operand
}

func (Between) isExpr() {}

// String renders the BETWEEN predicate.
func (b Between) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", b.Col, b.Lo, b.Hi)
}

// InSubquery is col [NOT] IN (SELECT ...).
type InSubquery struct {
	Col     ColumnRef
	Query   *Query
	Negated bool
}

func (InSubquery) isExpr() {}

// String renders the IN predicate.
func (i InSubquery) String() string {
	op := "IN"
	if i.Negated {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%s)", i.Col, op, i.Query)
}

// Exists is [NOT] EXISTS (SELECT ...).
type Exists struct {
	Query   *Query
	Negated bool
}

func (Exists) isExpr() {}

// String renders the EXISTS predicate.
func (e Exists) String() string {
	op := "EXISTS"
	if e.Negated {
		op = "NOT EXISTS"
	}
	return fmt.Sprintf("%s (%s)", op, e.Query)
}

// HavingCond is an aggregate comparison usable in HAVING,
// e.g. COUNT(*) > 5.
type HavingCond struct {
	Item  SelectItem // must have Agg != AggNone
	Op    CmpOp
	Right Operand
}

func (HavingCond) isExpr() {}

// String renders the HAVING comparison.
func (h HavingCond) String() string {
	return fmt.Sprintf("%s %s %s", h.Item, h.Op, h.Right)
}

// From is the FROM clause: either the @JOIN placeholder (the model's
// output before post-processing) or a list of tables joined implicitly
// through WHERE predicates.
type From struct {
	JoinPlaceholder bool
	Tables          []string
}

// String renders the FROM clause body.
func (f From) String() string {
	if f.JoinPlaceholder {
		return "@JOIN"
	}
	return strings.Join(f.Tables, ", ")
}

// Query is a full SELECT statement of the subset.
type Query struct {
	Distinct bool
	Select   []SelectItem
	From     From
	Where    Expr // nil when absent
	GroupBy  []ColumnRef
	Having   Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// NewQuery returns an empty query with Limit unset (-1).
func NewQuery() *Query { return &Query{Limit: -1} }

// String renders the query deterministically with uppercase keywords.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, s := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	b.WriteString(" FROM ")
	b.WriteString(q.From.String())
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if q.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(q.Having.String())
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// Clone deep-copies the query.
func (q *Query) Clone() *Query {
	if q == nil {
		return nil
	}
	out := &Query{
		Distinct: q.Distinct,
		Select:   append([]SelectItem(nil), q.Select...),
		From: From{
			JoinPlaceholder: q.From.JoinPlaceholder,
			Tables:          append([]string(nil), q.From.Tables...),
		},
		Where:   cloneExpr(q.Where),
		GroupBy: append([]ColumnRef(nil), q.GroupBy...),
		Having:  cloneExpr(q.Having),
		OrderBy: append([]OrderItem(nil), q.OrderBy...),
		Limit:   q.Limit,
	}
	return out
}

func cloneExpr(e Expr) Expr {
	switch v := e.(type) {
	case nil:
		return nil
	case Logic:
		return Logic{Op: v.Op, Left: cloneExpr(v.Left), Right: cloneExpr(v.Right)}
	case Not:
		return Not{Inner: cloneExpr(v.Inner)}
	case Comparison:
		return Comparison{Left: v.Left, Op: v.Op, Right: cloneOperand(v.Right)}
	case Between:
		return Between{Col: v.Col, Lo: cloneOperand(v.Lo), Hi: cloneOperand(v.Hi)}
	case InSubquery:
		return InSubquery{Col: v.Col, Query: v.Query.Clone(), Negated: v.Negated}
	case Exists:
		return Exists{Query: v.Query.Clone(), Negated: v.Negated}
	case HavingCond:
		return HavingCond{Item: v.Item, Op: v.Op, Right: cloneOperand(v.Right)}
	default:
		panic(fmt.Sprintf("sqlast: cloneExpr: unknown expr %T", e))
	}
}

func cloneOperand(o Operand) Operand {
	switch v := o.(type) {
	case nil:
		return nil
	case Value, Placeholder, ColOperand:
		return v
	case ScalarSubquery:
		return ScalarSubquery{Query: v.Query.Clone()}
	default:
		panic(fmt.Sprintf("sqlast: cloneOperand: unknown operand %T", o))
	}
}

// Conjuncts flattens an AND tree into its leaves. OR subtrees are kept
// as single leaves.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if l, ok := e.(Logic); ok && l.Op == OpAnd {
		return append(Conjuncts(l.Left), Conjuncts(l.Right)...)
	}
	return []Expr{e}
}

// AndAll joins conditions with AND (nil for empty input).
func AndAll(exprs []Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = Logic{Op: OpAnd, Left: out, Right: e}
		}
	}
	return out
}

// WalkQueries visits q and every subquery nested inside it.
func WalkQueries(q *Query, fn func(*Query)) {
	if q == nil {
		return
	}
	fn(q)
	walkExprQueries(q.Where, fn)
	walkExprQueries(q.Having, fn)
}

func walkExprQueries(e Expr, fn func(*Query)) {
	switch v := e.(type) {
	case nil:
	case Logic:
		walkExprQueries(v.Left, fn)
		walkExprQueries(v.Right, fn)
	case Not:
		walkExprQueries(v.Inner, fn)
	case Comparison:
		if s, ok := v.Right.(ScalarSubquery); ok {
			WalkQueries(s.Query, fn)
		}
	case Between:
		if s, ok := v.Lo.(ScalarSubquery); ok {
			WalkQueries(s.Query, fn)
		}
		if s, ok := v.Hi.(ScalarSubquery); ok {
			WalkQueries(s.Query, fn)
		}
	case InSubquery:
		WalkQueries(v.Query, fn)
	case Exists:
		WalkQueries(v.Query, fn)
	case HavingCond:
		if s, ok := v.Right.(ScalarSubquery); ok {
			WalkQueries(s.Query, fn)
		}
	}
}

// Columns returns every column referenced anywhere in the query,
// including subqueries, in first-appearance order.
func (q *Query) Columns() []ColumnRef {
	var out []ColumnRef
	seen := map[ColumnRef]bool{}
	add := func(c ColumnRef) {
		if c.Column == "" || c.Column == "*" {
			return
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	WalkQueries(q, func(sub *Query) {
		for _, s := range sub.Select {
			if !s.Star {
				add(s.Col)
			}
		}
		for _, e := range Conjuncts(sub.Where) {
			addExprCols(e, add)
		}
		for _, c := range sub.GroupBy {
			add(c)
		}
		for _, e := range Conjuncts(sub.Having) {
			addExprCols(e, add)
		}
		for _, o := range sub.OrderBy {
			if !o.Item.Star {
				add(o.Item.Col)
			}
		}
	})
	return out
}

func addExprCols(e Expr, add func(ColumnRef)) {
	switch v := e.(type) {
	case nil:
	case Logic:
		addExprCols(v.Left, add)
		addExprCols(v.Right, add)
	case Not:
		addExprCols(v.Inner, add)
	case Comparison:
		add(v.Left)
		if c, ok := v.Right.(ColOperand); ok {
			add(c.Col)
		}
	case Between:
		add(v.Col)
	case InSubquery:
		add(v.Col)
	case Exists:
	case HavingCond:
		if !v.Item.Star {
			add(v.Item.Col)
		}
	}
}

// HasSubquery reports whether the query contains any nested subquery.
func (q *Query) HasSubquery() bool {
	count := 0
	WalkQueries(q, func(*Query) { count++ })
	return count > 1
}

// HasAggregate reports whether the outer query projects or orders by an
// aggregate, or has a HAVING clause.
func (q *Query) HasAggregate() bool {
	for _, s := range q.Select {
		if s.Agg != AggNone {
			return true
		}
	}
	for _, o := range q.OrderBy {
		if o.Item.Agg != AggNone {
			return true
		}
	}
	return q.Having != nil
}
