package sqlast

import (
	"testing"
	"testing/quick"
)

func TestPatternAbstraction(t *testing.T) {
	// Same structure over different schema elements => same pattern.
	a := MustParse("SELECT name FROM patients WHERE age = @PATIENTS.AGE")
	b := MustParse("SELECT title FROM books WHERE pages = @BOOKS.PAGES")
	if a.Pattern() != b.Pattern() {
		t.Fatalf("patterns differ:\n%s\n%s", a.Pattern(), b.Pattern())
	}
	// Literal values and placeholders are the same pattern.
	c := MustParse("SELECT name FROM patients WHERE age = 80")
	if a.Pattern() != c.Pattern() {
		t.Fatalf("literal vs placeholder pattern mismatch")
	}
}

func TestPatternDistinguishesStructure(t *testing.T) {
	pairs := [][2]string{
		{"SELECT a FROM t", "SELECT * FROM t"},
		{"SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x > 1"},
		{"SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 1 AND y = 2"},
		{"SELECT COUNT(*) FROM t", "SELECT SUM(a) FROM t"},
		{"SELECT a FROM t ORDER BY b DESC LIMIT 1", "SELECT a FROM t ORDER BY b DESC"},
		{"SELECT a FROM t WHERE n = (SELECT MAX(n) FROM t)", "SELECT a FROM t WHERE n = (SELECT MIN(n) FROM t)"},
		{"SELECT a FROM t WHERE k IN (SELECT f FROM u)", "SELECT a FROM t WHERE k NOT IN (SELECT f FROM u)"},
	}
	for _, p := range pairs {
		if MustParse(p[0]).Pattern() == MustParse(p[1]).Pattern() {
			t.Errorf("%q and %q should have different patterns", p[0], p[1])
		}
	}
}

func TestPatternOpClasses(t *testing.T) {
	// All strict inequalities are one pattern class.
	gt := MustParse("SELECT a FROM t WHERE x > 1").Pattern()
	lt := MustParse("SELECT a FROM t WHERE x < 1").Pattern()
	ge := MustParse("SELECT a FROM t WHERE x >= 1").Pattern()
	if gt != lt || gt != ge {
		t.Fatal("comparison direction should collapse in patterns")
	}
	eq := MustParse("SELECT a FROM t WHERE x = 1").Pattern()
	ne := MustParse("SELECT a FROM t WHERE x != 1").Pattern()
	if eq != ne {
		t.Fatal("= and != should share a pattern class")
	}
	if eq == gt {
		t.Fatal("equality and inequality must remain distinct classes")
	}
}

func TestPatternJoinNormalization(t *testing.T) {
	a := MustParse("SELECT t.a FROM @JOIN WHERE u.b = 1").Pattern()
	b := MustParse("SELECT t.a FROM t, u WHERE u.b = 1").Pattern()
	if a != b {
		t.Fatalf("@JOIN and resolved multi-table FROM should share a pattern:\n%s\n%s", a, b)
	}
}

func TestPatternLimitClasses(t *testing.T) {
	l1 := MustParse("SELECT a FROM t ORDER BY b DESC LIMIT 1").Pattern()
	l5 := MustParse("SELECT a FROM t ORDER BY b DESC LIMIT 5").Pattern()
	l9 := MustParse("SELECT a FROM t ORDER BY b DESC LIMIT 9").Pattern()
	if l1 == l5 {
		t.Fatal("LIMIT 1 (argmax) must be its own pattern")
	}
	if l5 != l9 {
		t.Fatal("all top-k limits share one pattern")
	}
}

func TestDifficultyBuckets(t *testing.T) {
	cases := map[string]Difficulty{
		"SELECT * FROM t":                                               Easy,
		"SELECT a FROM t WHERE x = 1":                                   Easy,
		"SELECT a, COUNT(*) FROM t GROUP BY a":                          Medium, // group(2)+agg(1) = 3
		"SELECT AVG(a) FROM t WHERE x = 1":                              Medium,
		"SELECT a FROM t WHERE n = (SELECT MAX(n) FROM t)":              Hard,
		"SELECT a FROM t WHERE n = (SELECT MAX(n) FROM t WHERE x=1)":    VeryHard,
		"SELECT t.a FROM @JOIN WHERE u.b = 1 ORDER BY t.n DESC LIMIT 1": Hard, // pred+order+limit+join = 5
	}
	for sql, want := range cases {
		got := QueryDifficulty(MustParse(sql))
		if got != want {
			t.Errorf("difficulty(%q) = %v, want %v", sql, got, want)
		}
	}
}

func TestDifficultyMonotoneOrder(t *testing.T) {
	// Adding components must never lower the bucket.
	base := MustParse("SELECT a FROM t WHERE x = 1")
	more := MustParse("SELECT a FROM t WHERE x = 1 AND y = 2 ORDER BY n DESC LIMIT 3")
	if QueryDifficulty(more) < QueryDifficulty(base) {
		t.Fatal("more components must not reduce difficulty")
	}
}

// Property: Pattern is idempotent under reparsing.
func TestPatternStableQuick(t *testing.T) {
	sqls := []string{
		"SELECT a FROM t WHERE x = 1",
		"SELECT COUNT(*) FROM t GROUP BY a",
		"SELECT t.a FROM @JOIN WHERE u.b > 2",
		"SELECT a FROM t WHERE k IN (SELECT f FROM u WHERE g = 'x')",
	}
	f := func(i uint8) bool {
		q := MustParse(sqls[int(i)%len(sqls)])
		p1 := q.Pattern()
		q2 := MustParse(q.String())
		return q2.Pattern() == p1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
