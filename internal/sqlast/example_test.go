package sqlast_test

import (
	"fmt"

	"repro/internal/sqlast"
)

func ExampleParse() {
	q, err := sqlast.Parse("select name from patients where age = @PATIENTS.AGE")
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	// Output: SELECT name FROM patients WHERE age = @PATIENTS.AGE
}

func ExampleQuery_Pattern() {
	a := sqlast.MustParse("SELECT name FROM patients WHERE age = 80")
	b := sqlast.MustParse("SELECT title FROM books WHERE pages = @BOOKS.PAGES")
	fmt.Println(a.Pattern())
	fmt.Println(a.Pattern() == b.Pattern())
	// Output:
	// SELECT C FROM T WHERE C = @V
	// true
}

func ExampleQuery_Canonical() {
	a := sqlast.MustParse("SELECT a FROM t WHERE x = 1 AND y = 2")
	b := sqlast.MustParse("select A from T where Y = 2 and X = 1")
	fmt.Println(sqlast.EqualCanonical(a, b))
	// Output: true
}

func ExampleQueryDifficulty() {
	q := sqlast.MustParse("SELECT name FROM mountains WHERE height = (SELECT MAX(height) FROM mountains WHERE state = @STATES.NAME)")
	fmt.Println(sqlast.QueryDifficulty(q))
	// Output: Very Hard
}
