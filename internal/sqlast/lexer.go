package sqlast

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPlaceholder // @NAME or @TABLE.COL
	tokSymbol      // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // identifier (original case), symbol, number text, or string contents
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokString:
		return "'" + t.text + "'"
	default:
		return t.text
	}
}

// lexError reports a lexing failure with byte position.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("sql lex error at %d: %s", e.pos, e.msg)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lex tokenizes the input SQL text.
func lex(input string) ([]token, error) {
	var toks []token
	runes := []rune(input)
	i := 0
	n := len(runes)
	for i < n {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '@':
			start := i
			i++
			if i >= n || !isIdentStart(runes[i]) {
				return nil, &lexError{pos: start, msg: "'@' must be followed by a name"}
			}
			for i < n && isIdentPart(runes[i]) {
				i++
			}
			// Optional ".part" suffixes: @DOCTOR.NAME
			for i+1 < n && runes[i] == '.' && isIdentStart(runes[i+1]) {
				i++
				for i < n && isIdentPart(runes[i]) {
					i++
				}
			}
			toks = append(toks, token{kind: tokPlaceholder, text: string(runes[start+1 : i]), pos: start})
		case isIdentStart(r):
			start := i
			for i < n && isIdentPart(runes[i]) {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: string(runes[start:i]), pos: start})
		case unicode.IsDigit(r) || (r == '.' && i+1 < n && unicode.IsDigit(runes[i+1])):
			start := i
			for i < n && (unicode.IsDigit(runes[i]) || runes[i] == '.') {
				i++
			}
			text := string(runes[start:i])
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, &lexError{pos: start, msg: "bad number " + text}
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: f, pos: start})
		case r == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if runes[i] == '\'' {
					if i+1 < n && runes[i+1] == '\'' { // escaped quote
						sb.WriteRune('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteRune(runes[i])
				i++
			}
			if !closed {
				return nil, &lexError{pos: start, msg: "unterminated string"}
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case r == '<' || r == '>' || r == '!':
			start := i
			i++
			if i < n && (runes[i] == '=' || (r == '<' && runes[i] == '>')) {
				i++
			}
			toks = append(toks, token{kind: tokSymbol, text: string(runes[start:i]), pos: start})
		case strings.ContainsRune("=,().*;", r):
			toks = append(toks, token{kind: tokSymbol, text: string(r), pos: i})
			i++
		default:
			return nil, &lexError{pos: i, msg: fmt.Sprintf("unexpected character %q", r)}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}
