package sqlast

import "testing"

func TestCanonicalCaseFolding(t *testing.T) {
	a := MustParse("SELECT Name FROM Patients WHERE AGE = @patients.age")
	b := MustParse("select name from patients where age = @PATIENTS.AGE")
	if !EqualCanonical(a, b) {
		t.Fatalf("case variants should be canonically equal:\n%s\n%s", a.Canonical(), b.Canonical())
	}
}

func TestCanonicalConjunctOrder(t *testing.T) {
	a := MustParse("SELECT a FROM t WHERE x = 1 AND y = 2")
	b := MustParse("SELECT a FROM t WHERE y = 2 AND x = 1")
	if !EqualCanonical(a, b) {
		t.Fatal("AND conjunct order should not matter")
	}
	// OR order is preserved inside the leaf, so a different OR layout
	// is a different canonical form only if the leaf text differs.
	c := MustParse("SELECT a FROM t WHERE x = 1 OR y = 2")
	d := MustParse("SELECT a FROM t WHERE y = 2 OR x = 1")
	if EqualCanonical(c, d) {
		t.Fatal("OR leaves render in order; different orders should differ")
	}
}

func TestCanonicalSelectOrderMatters(t *testing.T) {
	a := MustParse("SELECT a, b FROM t")
	b := MustParse("SELECT b, a FROM t")
	if EqualCanonical(a, b) {
		t.Fatal("projection order is semantically significant")
	}
}

func TestCanonicalFromOrder(t *testing.T) {
	a := MustParse("SELECT x FROM t, u WHERE t.id = u.tid")
	b := MustParse("SELECT x FROM u, t WHERE t.id = u.tid")
	if !EqualCanonical(a, b) {
		t.Fatal("FROM table order should not matter")
	}
}

func TestCanonicalSubquery(t *testing.T) {
	a := MustParse("SELECT a FROM t WHERE n = (SELECT MAX(N) FROM T WHERE x = 1 AND y = 2)")
	b := MustParse("SELECT a FROM t WHERE n = (SELECT max(n) FROM t WHERE y = 2 AND x = 1)")
	if !EqualCanonical(a, b) {
		t.Fatal("subquery canonicalization failed")
	}
}

func TestCanonicalNilSafety(t *testing.T) {
	if !EqualCanonical(nil, nil) {
		t.Fatal("nil == nil")
	}
	if EqualCanonical(nil, MustParse("SELECT a FROM t")) {
		t.Fatal("nil != query")
	}
}

func TestCanonicalDoesNotMutate(t *testing.T) {
	q := MustParse("SELECT A FROM T WHERE Y = 2 AND X = 1")
	before := q.String()
	_ = q.Canonical()
	if q.String() != before {
		t.Fatal("Canonical mutated the receiver")
	}
}

func TestCanonicalSemanticDifferencePreserved(t *testing.T) {
	pairs := [][2]string{
		{"SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 2"},
		{"SELECT a FROM t WHERE x > 1", "SELECT a FROM t WHERE x >= 1"},
		{"SELECT a FROM t", "SELECT DISTINCT a FROM t"},
		{"SELECT a FROM t ORDER BY b ASC", "SELECT a FROM t ORDER BY b DESC"},
		{"SELECT a FROM t LIMIT 1", "SELECT a FROM t LIMIT 2"},
		{"SELECT COUNT(a) FROM t", "SELECT COUNT(DISTINCT a) FROM t"},
	}
	for _, p := range pairs {
		if EqualCanonical(MustParse(p[0]), MustParse(p[1])) {
			t.Errorf("%q and %q must not be canonically equal", p[0], p[1])
		}
	}
}
