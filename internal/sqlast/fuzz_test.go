package sqlast

import (
	"testing"
)

// FuzzParse asserts the parser never panics and that anything it
// accepts round-trips through the printer to a canonically equal
// query. Run with `go test -fuzz=FuzzParse ./internal/sqlast` to
// explore; the seed corpus runs in every ordinary `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT a, b FROM t WHERE x = 1 AND y != 'two' OR z < 3.5",
		"SELECT COUNT(DISTINCT a) FROM t GROUP BY b HAVING COUNT(*) > 2",
		"SELECT t.a FROM @JOIN WHERE u.b = @U.B ORDER BY t.c DESC LIMIT 5",
		"SELECT a FROM t WHERE n = (SELECT MAX(n) FROM t WHERE s LIKE '%x%')",
		"SELECT a FROM t WHERE k NOT IN (SELECT f FROM u) AND m BETWEEN 1 AND 2",
		"select a from t where not exists (select * from u);",
		"SELECT",
		"'unterminated",
		"@@@",
		"SELECT a FROM t WHERE s = 'it''s'",
		"SELECT ( FROM",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", input, printed, err)
		}
		if q.Canonical() != q2.Canonical() {
			t.Fatalf("canonical drift: %q -> %q vs %q", input, q.Canonical(), q2.Canonical())
		}
		// Token linearization must also round-trip.
		q3, err := ParseTokens(q.Tokens())
		if err != nil {
			t.Fatalf("token roundtrip of %q failed: %v", printed, err)
		}
		if q.Canonical() != q3.Canonical() {
			t.Fatalf("token canonical drift for %q", printed)
		}
	})
}

// FuzzLex asserts the lexer is total (never panics) on arbitrary
// input.
func FuzzLex(f *testing.F) {
	for _, s := range []string{"SELECT 1", "@", "'", "a.b.c", "<>=!", "日本語 SELECT"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err != nil {
			return
		}
		if len(toks) == 0 {
			t.Fatal("lex returned no tokens, not even EOF")
		}
		if toks[len(toks)-1].kind != tokEOF {
			t.Fatal("token stream not EOF-terminated")
		}
	})
}
