package sqlast

import (
	"fmt"
	"strings"
)

// ParseError reports a parse failure with token position and context.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql parse error at %d: %s", e.Pos, e.Msg)
}

// Parse parses a single SELECT statement of the supported subset. A
// trailing semicolon is allowed.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peekSymbol(";") {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek())
	}
	return q, nil
}

// MustParse parses or panics; for tests and embedded benchmark data.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(fmt.Sprintf("sqlast.MustParse(%q): %v", input, err))
	}
	return q
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

// peekKeyword reports whether the next token is the given keyword
// (case-insensitive identifier).
func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.next()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or errors.
func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %q", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) peekSymbol(sym string) bool {
	t := p.peek()
	return t.kind == tokSymbol && t.text == sym
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peekSymbol(sym) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, got %q", sym, p.peek())
	}
	return nil
}

// keywords that terminate clause item lists.
var clauseKeywords = map[string]bool{
	"from": true, "where": true, "group": true, "having": true,
	"order": true, "limit": true, "and": true, "or": true, "not": true,
	"in": true, "exists": true, "between": true, "like": true,
	"asc": true, "desc": true, "by": true, "distinct": true, "select": true,
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := NewQuery()
	q.Distinct = p.acceptKeyword("distinct")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	from, err := p.parseFrom()
	if err != nil {
		return nil, err
	}
	q.From = from
	if p.acceptKeyword("where") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("having") {
		h, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Having = h
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Item: item}
			if p.acceptKeyword("desc") {
				oi.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			q.OrderBy = append(q.OrderBy, oi)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected number after LIMIT, got %q", t)
		}
		p.next()
		q.Limit = int(t.num)
	}
	return q, nil
}

func (p *parser) parseFrom() (From, error) {
	if p.peek().kind == tokPlaceholder && strings.EqualFold(p.peek().text, "JOIN") {
		p.next()
		return From{JoinPlaceholder: true}, nil
	}
	var f From
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return f, p.errorf("expected table name, got %q", t)
		}
		p.next()
		f.Tables = append(f.Tables, t.text)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return f, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	var item SelectItem
	t := p.peek()
	if t.kind == tokSymbol && t.text == "*" {
		p.next()
		item.Star = true
		return item, nil
	}
	if t.kind != tokIdent {
		return item, p.errorf("expected column or aggregate, got %q", t)
	}
	if agg, ok := ParseAgg(t.text); ok && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
		p.next() // agg name
		p.next() // (
		item.Agg = agg
		if p.acceptKeyword("distinct") {
			item.Distinct = true
		}
		if p.acceptSymbol("*") {
			item.Star = true
		} else {
			c, err := p.parseColumnRef()
			if err != nil {
				return item, err
			}
			item.Col = c
		}
		if err := p.expectSymbol(")"); err != nil {
			return item, err
		}
		return item, nil
	}
	c, err := p.parseColumnRef()
	if err != nil {
		return item, err
	}
	item.Col = c
	if c.Column == "*" {
		item.Star = true // table.* projection
	}
	return item, nil
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	t := p.peek()
	if t.kind != tokIdent || clauseKeywords[strings.ToLower(t.text)] {
		return ColumnRef{}, p.errorf("expected column name, got %q", t)
	}
	p.next()
	ref := ColumnRef{Column: t.text}
	if p.peekSymbol(".") {
		p.next()
		t2 := p.peek()
		if t2.kind == tokSymbol && t2.text == "*" {
			p.next()
			// table.* — represent as star with table recorded in Column.
			return ColumnRef{Table: ref.Column, Column: "*"}, nil
		}
		if t2.kind != tokIdent {
			return ColumnRef{}, p.errorf("expected column after '.', got %q", t2)
		}
		p.next()
		ref = ColumnRef{Table: ref.Column, Column: t2.text}
	}
	return ref, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Logic{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parsePredicate()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		left = Logic{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parsePredicate() (Expr, error) {
	if p.acceptKeyword("not") {
		if p.peekKeyword("exists") {
			e, err := p.parseExists()
			if err != nil {
				return nil, err
			}
			ex := e.(Exists)
			ex.Negated = true
			return ex, nil
		}
		inner, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		return Not{Inner: inner}, nil
	}
	if p.peekKeyword("exists") {
		return p.parseExists()
	}
	if p.acceptSymbol("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	// Aggregate comparison (HAVING) or column predicate.
	t := p.peek()
	if t.kind == tokIdent {
		if agg, ok := ParseAgg(t.text); ok && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			item := SelectItem{Agg: agg}
			p.next()
			p.next()
			if p.acceptKeyword("distinct") {
				item.Distinct = true
			}
			if p.acceptSymbol("*") {
				item.Star = true
			} else {
				c, err := p.parseColumnRef()
				if err != nil {
					return nil, err
				}
				item.Col = c
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			op, err := p.parseCmpOp()
			if err != nil {
				return nil, err
			}
			rhs, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return HavingCond{Item: item, Op: op, Right: rhs}, nil
		}
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	switch {
	case p.peekKeyword("between"):
		p.next()
		lo, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return Between{Col: col, Lo: lo, Hi: hi}, nil
	case p.peekKeyword("not"):
		p.next()
		if p.acceptKeyword("in") {
			sub, err := p.parseParenQuery()
			if err != nil {
				return nil, err
			}
			return InSubquery{Col: col, Query: sub, Negated: true}, nil
		}
		if p.acceptKeyword("like") {
			rhs, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return Not{Inner: Comparison{Left: col, Op: OpLike, Right: rhs}}, nil
		}
		return nil, p.errorf("expected IN or LIKE after NOT")
	case p.peekKeyword("in"):
		p.next()
		sub, err := p.parseParenQuery()
		if err != nil {
			return nil, err
		}
		return InSubquery{Col: col, Query: sub}, nil
	case p.peekKeyword("like"):
		p.next()
		rhs, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return Comparison{Left: col, Op: OpLike, Right: rhs}, nil
	default:
		op, err := p.parseCmpOp()
		if err != nil {
			return nil, err
		}
		rhs, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return Comparison{Left: col, Op: op, Right: rhs}, nil
	}
}

func (p *parser) parseExists() (Expr, error) {
	if err := p.expectKeyword("exists"); err != nil {
		return nil, err
	}
	sub, err := p.parseParenQuery()
	if err != nil {
		return nil, err
	}
	return Exists{Query: sub}, nil
}

func (p *parser) parseParenQuery() (*Query, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	sub, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return sub, nil
}

func (p *parser) parseCmpOp() (CmpOp, error) {
	t := p.peek()
	if t.kind != tokSymbol {
		return 0, p.errorf("expected comparison operator, got %q", t)
	}
	var op CmpOp
	switch t.text {
	case "=":
		op = OpEq
	case "!=", "<>":
		op = OpNe
	case "<":
		op = OpLt
	case "<=":
		op = OpLe
	case ">":
		op = OpGt
	case ">=":
		op = OpGe
	default:
		return 0, p.errorf("expected comparison operator, got %q", t)
	}
	p.next()
	return op, nil
}

// parseOperand parses a literal, placeholder, scalar subquery, or
// column operand.
func (p *parser) parseOperand() (Operand, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		return NumValue(t.num), nil
	case tokString:
		p.next()
		return StrValue(t.text), nil
	case tokPlaceholder:
		p.next()
		return Placeholder{Name: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			sub, err := p.parseParenQuery()
			if err != nil {
				return nil, err
			}
			return ScalarSubquery{Query: sub}, nil
		}
	case tokIdent:
		if !clauseKeywords[strings.ToLower(t.text)] {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			return ColOperand{Col: c}, nil
		}
	}
	return nil, p.errorf("expected value, placeholder, column, or subquery, got %q", t)
}
