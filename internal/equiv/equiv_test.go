package equiv

import (
	"testing"

	"repro/internal/patients"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

func checker(t *testing.T) *Checker {
	t.Helper()
	return New(patients.Schema(), DefaultConfig())
}

func verdict(t *testing.T, c *Checker, a, b string) Verdict {
	t.Helper()
	v, _, err := c.Check(sqlast.MustParse(a), sqlast.MustParse(b))
	if err != nil {
		t.Fatalf("Check(%q, %q): %v", a, b, err)
	}
	return v
}

func TestEquivalentPairs(t *testing.T) {
	c := checker(t)
	pairs := [][2]string{
		// Identical up to formatting/case.
		{"SELECT name FROM patients WHERE age = 3", "select NAME from PATIENTS where AGE = 3"},
		// Commuted conjuncts.
		{
			"SELECT name FROM patients WHERE age = 3 AND gender = 'v1'",
			"SELECT name FROM patients WHERE gender = 'v1' AND age = 3",
		},
		// x >= k  ===  x > k OR x = k.
		{
			"SELECT name FROM patients WHERE age >= 3",
			"SELECT name FROM patients WHERE age > 3 OR age = 3",
		},
		// BETWEEN === two comparisons.
		{
			"SELECT name FROM patients WHERE age BETWEEN 2 AND 5",
			"SELECT name FROM patients WHERE age >= 2 AND age <= 5",
		},
		// argmax via ORDER/LIMIT differs on ties, but the count of
		// MAX holders via subquery matches COUNT filtering: use the
		// genuinely equivalent nested forms instead.
		{
			"SELECT MAX(age) FROM patients",
			"SELECT MAX(age) FROM patients WHERE age >= 0",
		},
		// De Morgan.
		{
			"SELECT name FROM patients WHERE NOT (age = 3 OR gender = 'v1')",
			"SELECT name FROM patients WHERE age != 3 AND gender != 'v1'",
		},
	}
	for _, p := range pairs {
		if v := verdict(t, c, p[0], p[1]); v != LikelyEquivalent {
			t.Errorf("%q vs %q: %v, want likely equivalent", p[0], p[1], v)
		}
	}
}

func TestNonEquivalentPairs(t *testing.T) {
	c := checker(t)
	pairs := [][2]string{
		{"SELECT name FROM patients WHERE age = 3", "SELECT name FROM patients WHERE age = 4"},
		{"SELECT name FROM patients WHERE age > 3", "SELECT name FROM patients WHERE age >= 3"},
		{"SELECT name FROM patients", "SELECT DISTINCT name FROM patients"},
		{"SELECT COUNT(*) FROM patients", "SELECT COUNT(DISTINCT gender) FROM patients"},
		{"SELECT AVG(age) FROM patients", "SELECT SUM(age) FROM patients"},
		{"SELECT name FROM patients WHERE age = 3 AND gender = 'v1'", "SELECT name FROM patients WHERE age = 3 OR gender = 'v1'"},
		{"SELECT MAX(age) FROM patients", "SELECT MIN(age) FROM patients"},
		// Ties distinguish argmax-by-limit from the nested form.
		{
			"SELECT name FROM patients ORDER BY age DESC LIMIT 1",
			"SELECT name FROM patients WHERE age = (SELECT MAX(age) FROM patients)",
		},
	}
	for _, p := range pairs {
		v, cex, err := c.Check(sqlast.MustParse(p[0]), sqlast.MustParse(p[1]))
		if err != nil {
			t.Fatal(err)
		}
		if v != NotEquivalent {
			t.Errorf("%q vs %q: %v, want not equivalent", p[0], p[1], v)
			continue
		}
		if cex == nil {
			t.Errorf("%q vs %q: missing counterexample", p[0], p[1])
		}
	}
}

func TestInvalidQueries(t *testing.T) {
	c := checker(t)
	v, _, err := c.Check(
		sqlast.MustParse("SELECT nonexistent FROM patients"),
		sqlast.MustParse("SELECT also_missing FROM patients"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if v != Invalid {
		t.Fatalf("two invalid queries should be Invalid, got %v", v)
	}
	// One valid, one invalid: distinguishable.
	v2, _, err := c.Check(
		sqlast.MustParse("SELECT name FROM patients"),
		sqlast.MustParse("SELECT nonexistent FROM patients"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != NotEquivalent {
		t.Fatalf("valid vs invalid should be NotEquivalent, got %v", v2)
	}
}

func TestDeterminism(t *testing.T) {
	c := checker(t)
	a := sqlast.MustParse("SELECT name FROM patients WHERE age > 2")
	b := sqlast.MustParse("SELECT name FROM patients WHERE age > 3")
	v1, cex1, _ := c.Check(a, b)
	v2, cex2, _ := c.Check(a, b)
	if v1 != v2 {
		t.Fatal("nondeterministic verdict")
	}
	if (cex1 == nil) != (cex2 == nil) || (cex1 != nil && cex1.Instance != cex2.Instance) {
		t.Fatal("nondeterministic counterexample")
	}
}

func TestMultiTableSchema(t *testing.T) {
	s := &schema.Schema{
		Name: "geo",
		Tables: []*schema.Table{
			{Name: "states", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
			}},
			{Name: "cities", Columns: []*schema.Column{
				{Name: "id", Type: schema.Number, PrimaryKey: true},
				{Name: "name", Type: schema.Text},
				{Name: "pop", Type: schema.Number},
				{Name: "state_id", Type: schema.Number},
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "cities", FromColumn: "state_id", ToTable: "states", ToColumn: "id"},
		},
	}
	c := New(s, DefaultConfig())
	// Join order commutes.
	v := mustVerdict(t, c,
		"SELECT states.name FROM states, cities WHERE cities.state_id = states.id AND cities.pop > 2",
		"SELECT states.name FROM cities, states WHERE states.id = cities.state_id AND cities.pop > 2")
	if v != LikelyEquivalent {
		t.Fatalf("commuted join = %v", v)
	}
	// Dropping the join predicate is not equivalent.
	v2 := mustVerdict(t, c,
		"SELECT states.name FROM states, cities WHERE cities.state_id = states.id",
		"SELECT states.name FROM states, cities")
	if v2 != NotEquivalent {
		t.Fatalf("cartesian vs join = %v", v2)
	}
}

func mustVerdict(t *testing.T, c *Checker, a, b string) Verdict {
	t.Helper()
	v, _, err := c.Check(sqlast.MustParse(a), sqlast.MustParse(b))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestPatientsAlternativeGolds uses the checker the way the paper
// suggests: verify that standard semantically equivalent alternates of
// benchmark gold queries are accepted.
func TestPatientsAlternativeGolds(t *testing.T) {
	c := checker(t)
	alternates := [][2]string{
		{
			"SELECT name FROM patients WHERE length_of_stay = (SELECT MIN(length_of_stay) FROM patients)",
			"SELECT name FROM patients WHERE length_of_stay <= (SELECT MIN(length_of_stay) FROM patients)",
		},
		{
			"SELECT COUNT(*) FROM patients WHERE age > (SELECT AVG(age) FROM patients)",
			"SELECT COUNT(id) FROM patients WHERE age > (SELECT AVG(age) FROM patients)",
		},
	}
	for _, p := range alternates {
		if v := mustVerdict(t, c, p[0], p[1]); v != LikelyEquivalent {
			t.Errorf("alternate gold rejected: %q vs %q = %v", p[0], p[1], v)
		}
	}
}
