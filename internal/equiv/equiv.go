// Package equiv is a bounded semantic-equivalence checker for the SQL
// subset, standing in for the Cosette prover the paper points to for
// scaling the Patients benchmark beyond manually enumerated equivalent
// answers (§6.2: "if the benchmark were to be extended, one could use
// an equivalence checker (e.g., Cosette)").
//
// Instead of a symbolic proof, the checker searches for a
// counterexample: the two queries are executed over many randomized
// small database instances of the schema; any instance on which their
// results differ disproves equivalence, and surviving all instances is
// reported as "equivalent up to the test bound". This is the classic
// testing approximation of query equivalence — sound for rejection,
// probabilistic for acceptance — which is exactly what benchmark
// scoring needs.
package equiv

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// Verdict is the outcome of an equivalence check.
type Verdict int

const (
	// NotEquivalent means a counterexample database was found.
	NotEquivalent Verdict = iota
	// LikelyEquivalent means no counterexample was found within the
	// test bound.
	LikelyEquivalent
	// Invalid means at least one query failed to execute on every
	// tested instance (unknown columns, correlated subquery, ...).
	Invalid
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case NotEquivalent:
		return "not equivalent"
	case LikelyEquivalent:
		return "likely equivalent"
	default:
		return "invalid"
	}
}

// Config bounds the counterexample search.
type Config struct {
	// Instances is the number of randomized databases to try.
	Instances int
	// RowsPerTable sizes each instance. Small tables make collisions
	// (equal values, empty groups, ties) likely, which is what
	// separates near-equivalent queries.
	RowsPerTable int
	// ValuePoolSize bounds the distinct values per column so that
	// predicates hit and miss with useful frequency.
	ValuePoolSize int
	// Seed makes the search deterministic.
	Seed int64
}

// DefaultConfig is a practical bound: 24 instances of 6 rows each.
func DefaultConfig() Config {
	return Config{Instances: 24, RowsPerTable: 6, ValuePoolSize: 4, Seed: 1}
}

// Counterexample describes a distinguishing instance.
type Counterexample struct {
	Instance int
	ResultA  *engine.Result
	ResultB  *engine.Result
}

// Checker tests query equivalence over one schema.
type Checker struct {
	Schema *schema.Schema
	Config Config
}

// New returns a checker with the given bounds.
func New(s *schema.Schema, cfg Config) *Checker {
	return &Checker{Schema: s, Config: cfg}
}

// Check searches for a counterexample distinguishing a and b. The
// returned counterexample is nil unless the verdict is NotEquivalent.
func (c *Checker) Check(a, b *sqlast.Query) (Verdict, *Counterexample, error) {
	if a == nil || b == nil {
		return Invalid, nil, fmt.Errorf("equiv: nil query")
	}
	executedOnce := false
	for i := 0; i < c.Config.Instances; i++ {
		db, err := c.randomInstance(c.Config.Seed + int64(i)*977)
		if err != nil {
			return Invalid, nil, err
		}
		ra, errA := db.Execute(a)
		rb, errB := db.Execute(b)
		if errA != nil && errB != nil {
			continue // both invalid on this instance
		}
		if (errA == nil) != (errB == nil) {
			// One executes, the other errors: distinguishable.
			return NotEquivalent, &Counterexample{Instance: i, ResultA: ra, ResultB: rb}, nil
		}
		executedOnce = true
		if !engine.EqualResults(ra, rb) {
			return NotEquivalent, &Counterexample{Instance: i, ResultA: ra, ResultB: rb}, nil
		}
	}
	if !executedOnce {
		return Invalid, nil, nil
	}
	return LikelyEquivalent, nil, nil
}

// randomInstance builds one randomized database: small tables, small
// value pools, foreign keys honored, including empty-table and
// duplicate-value edge cases.
func (c *Checker) randomInstance(seed int64) (*engine.Database, error) {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDatabase(c.Schema)

	// Key pools per table for FK wiring.
	keyPool := map[string][]engine.Value{}
	fkFor := func(t *schema.Table, col *schema.Column) (schema.ForeignKey, bool) {
		for _, fk := range c.Schema.ForeignKeys {
			if equalFold(fk.FromTable, t.Name) && equalFold(fk.FromColumn, col.Name) {
				return fk, true
			}
		}
		return schema.ForeignKey{}, false
	}

	for _, t := range orderTables(c.Schema) {
		rows := c.Config.RowsPerTable
		// Occasionally generate an (almost) empty table: aggregates
		// over empty inputs are classic distinguishers.
		if rng.Intn(6) == 0 {
			rows = rng.Intn(2)
		}
		var keys []engine.Value
		for i := 0; i < rows; i++ {
			row := make(engine.Row, len(t.Columns))
			for ci, col := range t.Columns {
				if fk, ok := fkFor(t, col); ok {
					pool := keyPool[lower(fk.ToTable)]
					if len(pool) > 0 {
						row[ci] = pool[rng.Intn(len(pool))]
						continue
					}
				}
				if col.PrimaryKey {
					row[ci] = engine.Num(float64(i + 1))
					keys = append(keys, row[ci])
					continue
				}
				if col.Type == schema.Number {
					row[ci] = engine.Num(float64(rng.Intn(c.Config.ValuePoolSize * 3)))
				} else {
					row[ci] = engine.Str(fmt.Sprintf("v%d", rng.Intn(c.Config.ValuePoolSize)))
				}
			}
			if err := db.Insert(t.Name, row); err != nil {
				return nil, err
			}
		}
		keyPool[lower(t.Name)] = keys
	}
	return db, nil
}

func orderTables(s *schema.Schema) []*schema.Table {
	// Parents (FK targets) before children so key pools exist.
	isChildOf := map[string]map[string]bool{}
	for _, fk := range s.ForeignKeys {
		if isChildOf[lower(fk.FromTable)] == nil {
			isChildOf[lower(fk.FromTable)] = map[string]bool{}
		}
		isChildOf[lower(fk.FromTable)][lower(fk.ToTable)] = true
	}
	var out []*schema.Table
	placed := map[string]bool{}
	for len(out) < len(s.Tables) {
		progressed := false
		for _, t := range s.Tables {
			lt := lower(t.Name)
			if placed[lt] {
				continue
			}
			ready := true
			for dep := range isChildOf[lt] {
				if dep != lt && !placed[dep] {
					ready = false
				}
			}
			if ready {
				out = append(out, t)
				placed[lt] = true
				progressed = true
			}
		}
		if !progressed {
			for _, t := range s.Tables {
				if !placed[lower(t.Name)] {
					out = append(out, t)
					placed[lower(t.Name)] = true
				}
			}
		}
	}
	return out
}

func lower(s string) string {
	out := []byte(s)
	for i, c := range out {
		if 'A' <= c && c <= 'Z' {
			out[i] = c + 32
		}
	}
	return string(out)
}

func equalFold(a, b string) bool { return lower(a) == lower(b) }
