package registry

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/boot"
	"repro/internal/eval"
	"repro/internal/models"
	"repro/internal/spider"
)

// Onboard starts building a version for the spec's tenant in the
// background and returns immediately; progress is visible through
// Status. A new tenant appears in pending state right away (lookups
// find it, but it serves nothing until the build passes the eval gate
// and swaps in). Re-onboarding an existing tenant builds a replacement
// version while the current one keeps serving. Cancelling ctx aborts
// the build; with CheckpointDir set, a mid-training abort leaves a
// checkpoint that the next Onboard of the same spec resumes from
// bit-identically.
func (r *Registry) Onboard(ctx context.Context, spec boot.Spec) (*Tenant, error) {
	spec = spec.WithDefaults()
	name := boot.TenantName(spec.Schema)
	if name == "" {
		return nil, fmt.Errorf("registry: onboard: empty schema name")
	}
	t := r.tenant(name)
	t.mu.Lock()
	if t.st.Onboarding {
		t.mu.Unlock()
		return t, fmt.Errorf("registry: tenant %q is already onboarding", name)
	}
	octx, cancel := context.WithCancel(ctx)
	t.st.Onboarding = true
	t.st.State = StatePending
	t.st.Error = ""
	t.cancel = cancel
	t.mu.Unlock()

	r.wg.Add(1)
	//lint:allow rawgo onboarding must run beside live serving; completion is published through the tenant's slot and status, and Registry.Wait joins the goroutine
	go r.onboard(octx, cancel, t, spec)
	return t, nil
}

// onboard is the background build worker behind Onboard.
func (r *Registry) onboard(ctx context.Context, cancel context.CancelFunc, t *Tenant, spec boot.Spec) {
	defer r.wg.Done()
	err := r.runOnboard(ctx, t, spec)
	cancel()
	t.mu.Lock()
	t.cancel = nil
	t.mu.Unlock()
	if err != nil {
		t.fail(err)
		r.logf("registry: onboard %s: %v", t.Name, err)
	}
}

// runOnboard executes the onboarding phases: resolve → generate →
// train (checkpointed, resumable) → evaluate → swap.
func (r *Registry) runOnboard(ctx context.Context, t *Tenant, spec boot.Spec) error {
	s, db, err := boot.ResolveSchema(spec.Schema, spec.Rows, spec.Seed)
	if err != nil {
		return err
	}

	t.enter(StateGenerating)
	pairs, err := boot.Pairs(ctx, s, spec.ParamsOrDefault(), spec.Seed, r.cfg.PipelineWorkers)
	if err != nil {
		return err
	}
	exs := models.PairExamples(pairs, s)
	r.logf("registry: %s: synthesized %d NL-SQL pairs", t.Name, len(pairs))

	t.enter(StateTraining)
	m, err := boot.ModelFor(spec)
	if err != nil {
		return err
	}
	opts := spec.Train
	ckpath := ""
	if r.cfg.CheckpointDir != "" && spec.LoadPath == "" {
		ckpath = filepath.Join(r.cfg.CheckpointDir, t.Name+".ckpt")
		if opts.CheckpointPath == "" {
			opts.CheckpointPath = ckpath
		}
		if opts.CheckpointEvery == 0 {
			opts.CheckpointEvery = r.cfg.CheckpointEvery
		}
		if opts.Resume == nil {
			if ck, lerr := models.LoadCheckpoint(opts.CheckpointPath); lerr == nil && ck.Kind == m.Name() {
				opts.Resume = ck
				t.mu.Lock()
				t.st.Resumed = true
				t.mu.Unlock()
				r.logf("registry: %s: resuming training from checkpoint (epoch %d, step %d)",
					t.Name, ck.Epoch, ck.Step)
			}
		}
	}
	if err := boot.Train(ctx, m, exs, opts); err != nil {
		return err
	}

	acc := 0.0
	if r.cfg.EvalQuestions > 0 {
		t.enter(StateEvaluating)
		qs := spider.Workload(s, r.cfg.EvalQuestions, spec.Seed+1789)
		rep, err := eval.EvalSchemaCtx(ctx, m, s, qs, r.cfg.EvalWorkers)
		if err != nil {
			return err
		}
		acc = rep.Overall.Acc()
		if r.cfg.MinAccuracy > 0 && acc < r.cfg.MinAccuracy {
			return &EvalGateError{Accuracy: acc, Min: r.cfg.MinAccuracy}
		}
	}

	u := boot.Assemble(spec, s, db, m, exs, len(pairs))
	v := r.newVersion(t, u, acc)
	t.install(v)
	if ckpath != "" {
		// The slot swapped; a stale checkpoint must not seed the next
		// onboarding of this tenant.
		if rmErr := os.Remove(ckpath); rmErr != nil && !os.IsNotExist(rmErr) {
			r.logf("registry: %s: removing checkpoint: %v", t.Name, rmErr)
		}
	}
	r.logf("registry: %s: version %d ready (eval accuracy %.3f)", t.Name, v.Seq, acc)
	return nil
}
