// Package registry hosts many DBPal tenants — one schema, translator,
// database, and result cache each — inside a single process, making
// the paper's "pluggable from nothing but a schema" pitch a live
// operation instead of a restart. Each tenant serves from a versioned
// model slot read lock-free through an atomic pointer; onboarding a
// new or replacement version runs in the background over the same
// pipeline stage graph and checkpointable training the CLIs use
// (internal/boot), gated by an exact-match eval before the swap:
//
//   - Slot swap: a version becomes visible with one atomic store, so
//     in-flight requests keep the version they started with and new
//     requests see the new one — no lock on the hot path, no dropped
//     requests.
//   - Rollback: a candidate failing the eval gate is discarded before
//     the swap; the previously serving version never stops answering.
//     An installed version can also be explicitly rolled back to its
//     predecessor.
//   - Restartable onboarding: training checkpoints land in
//     CheckpointDir/<tenant>.ckpt; a killed onboarding re-run with the
//     same spec resumes from the checkpoint bit-identically.
//
// Per-tenant equipment above this package (circuit breakers,
// microbatchers) attaches to each version through Config.Equip, so the
// registry stays independent of the HTTP serving layer.
package registry

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/boot"
	"repro/internal/cache"
	"repro/internal/par"
	"repro/internal/runtime"
)

// State is a tenant's lifecycle phase, exposed by the admin API.
type State string

// Tenant lifecycle states. Onboarding walks pending → generating →
// training → evaluating; the terminal states are ready (serving),
// failed (no version ever installed), and rolled_back (a re-onboard
// failed, the prior version still serves).
const (
	StatePending    State = "pending"
	StateGenerating State = "generating"
	StateTraining   State = "training"
	StateEvaluating State = "evaluating"
	StateReady      State = "ready"
	StateFailed     State = "failed"
	StateRolledBack State = "rolled_back"
)

// Status is the externally visible snapshot of one tenant.
type Status struct {
	Name  string `json:"name"`
	State State  `json:"state"`
	// Version is the serving slot's sequence number (0 = none yet).
	Version int `json:"version"`
	// Onboarding reports a build in flight (state names its phase).
	Onboarding bool `json:"onboarding,omitempty"`
	// Resumed reports that the in-flight build continued from a
	// checkpoint left by a killed predecessor.
	Resumed bool `json:"resumed,omitempty"`
	// Pairs and Accuracy describe the serving version's corpus and its
	// eval-gate score.
	Pairs    int     `json:"pairs,omitempty"`
	Accuracy float64 `json:"accuracy"`
	Error    string  `json:"error,omitempty"`
}

// Version is one immutable model slot value: the assembled unit plus
// the per-version result cache (a fresh cache per version keeps hits
// coherent with the model that decoded them across swaps).
type Version struct {
	Seq      int
	Unit     *boot.Unit
	Cache    *cache.Cache[*runtime.DecodeResult]
	Accuracy float64
	// Equipment is whatever Config.Equip attached (the serving layer's
	// per-version breakers and batcher); opaque to the registry.
	Equipment any
}

// Tenant is one hosted schema. The serving slot is read with Current
// (lock-free); everything else is guarded by mu.
type Tenant struct {
	Name string
	// Limiter bounds the tenant's concurrent translations — admission
	// control is per-tenant, so one tenant's overload cannot starve
	// another.
	Limiter *par.Limiter

	cur atomic.Pointer[Version]

	mu      sync.Mutex
	prev    *Version
	st      Status
	nextSeq int
	cancel  context.CancelFunc // active onboarding, nil otherwise
}

// Current returns the serving version, or nil while the first
// onboarding is still in flight.
func (t *Tenant) Current() *Version { return t.cur.Load() }

// Previous returns the version displaced by the last swap, if any.
func (t *Tenant) Previous() *Version {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.prev
}

// Status snapshots the tenant.
func (t *Tenant) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.st
	st.Name = t.Name
	if v := t.cur.Load(); v != nil {
		st.Version = v.Seq
		st.Accuracy = v.Accuracy
		st.Pairs = v.Unit.Pairs
	}
	return st
}

// Rollback atomically swaps the previous version back into the slot
// (the escape hatch for a regression discovered after a swap). It
// reports whether there was a predecessor to restore.
func (t *Tenant) Rollback() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.prev == nil {
		return false
	}
	restored := t.prev
	t.prev = t.cur.Load()
	t.cur.Store(restored)
	t.st.State = StateRolledBack
	t.st.Error = ""
	return true
}

// install publishes v as the serving version. The atomic store is the
// zero-downtime swap: requests that already loaded the old version
// finish on it, every later Current sees v.
func (t *Tenant) install(v *Version) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old := t.cur.Load(); old != nil {
		t.prev = old
	}
	t.cur.Store(v)
	t.st.State = StateReady
	t.st.Onboarding = false
	t.st.Resumed = false
	t.st.Error = ""
}

// enter moves the onboarding status to a new phase.
func (t *Tenant) enter(s State) {
	t.mu.Lock()
	t.st.State = s
	t.mu.Unlock()
}

// fail terminates onboarding: rolled_back when a prior version keeps
// serving, failed when there is nothing to serve.
func (t *Tenant) fail(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.st.Onboarding = false
	t.st.Resumed = false
	t.st.Error = err.Error()
	if t.cur.Load() != nil {
		t.st.State = StateRolledBack
	} else {
		t.st.State = StateFailed
	}
}

// Config sizes the registry and its onboarding pipeline.
type Config struct {
	// Workers bounds each tenant's concurrent translations (0 = NumCPU).
	Workers int
	// CacheSize/CacheShards size each version's result cache (0 = no
	// cache).
	CacheSize   int
	CacheShards int
	// MinAccuracy is the eval gate: a candidate scoring below it is
	// rejected (rolled back) instead of installed. 0 disables gating.
	MinAccuracy float64
	// EvalQuestions sizes the gate workload (default 24; negative
	// skips evaluation entirely).
	EvalQuestions int
	// EvalWorkers bounds the gate's parallel scoring (0 = NumCPU).
	EvalWorkers int
	// CheckpointDir, when set, makes onboarding restartable: training
	// checkpoints land in <dir>/<tenant>.ckpt every CheckpointEvery
	// steps (default 25) and a rerun resumes from them.
	CheckpointDir   string
	CheckpointEvery int
	// PipelineWorkers bounds the generation stage pool (0 = NumCPU).
	PipelineWorkers int
	// Equip, when non-nil, attaches per-version equipment before the
	// version becomes visible (the serving layer's breakers/batcher).
	Equip func(tenant string, v *Version)
	// Logf, when non-nil, receives onboarding progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.EvalQuestions == 0 {
		c.EvalQuestions = 24
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 25
	}
	return c
}

// Registry is the tenant directory. All methods are safe for
// concurrent use.
type Registry struct {
	cfg Config

	mu      sync.RWMutex
	tenants map[string]*Tenant
	order   []string // insertion order; order[0] is the default tenant

	wg sync.WaitGroup
}

// New returns an empty registry.
func New(cfg Config) *Registry {
	return &Registry{cfg: cfg.withDefaults(), tenants: map[string]*Tenant{}}
}

// Lookup returns the named tenant, or nil.
func (r *Registry) Lookup(name string) *Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tenants[name]
}

// Default returns the first-installed tenant (the legacy single-tenant
// routes' target), or nil for an empty registry.
func (r *Registry) Default() *Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.order) == 0 {
		return nil
	}
	return r.tenants[r.order[0]]
}

// Names lists tenants in insertion order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Statuses snapshots every tenant, sorted by name for stable output.
func (r *Registry) Statuses() []Status {
	r.mu.RLock()
	ts := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	r.mu.RUnlock()
	out := make([]Status, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.Status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// tenant returns the named tenant, creating (and ordering) it if new.
func (r *Registry) tenant(name string) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tenants[name]
	if t == nil {
		t = &Tenant{
			Name:    name,
			Limiter: par.NewLimiter(par.Count(r.cfg.Workers)),
			st:      Status{State: StatePending},
		}
		r.tenants[name] = t
		r.order = append(r.order, name)
	}
	return t
}

// newVersion allocates the next slot value for t and attaches its
// cache and equipment.
func (r *Registry) newVersion(t *Tenant, u *boot.Unit, acc float64) *Version {
	t.mu.Lock()
	t.nextSeq++
	seq := t.nextSeq
	t.mu.Unlock()
	v := &Version{Seq: seq, Unit: u, Accuracy: acc}
	if r.cfg.CacheSize > 0 {
		v.Cache = cache.New[*runtime.DecodeResult](cache.Config{
			Capacity: r.cfg.CacheSize,
			Shards:   r.cfg.CacheShards,
		})
	}
	if r.cfg.Equip != nil {
		r.cfg.Equip(t.Name, v)
	}
	return v
}

// Install registers a pre-built unit synchronously — the boot-time
// path for schemas named on the command line. The returned tenant is
// immediately ready.
func (r *Registry) Install(name string, u *boot.Unit) *Tenant {
	t := r.tenant(name)
	t.install(r.newVersion(t, u, 0))
	return t
}

// Remove deletes the tenant, cancelling any in-flight onboarding. It
// reports whether the tenant existed. Requests already holding the
// tenant's version finish normally; new lookups miss.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	t := r.tenants[name]
	if t != nil {
		delete(r.tenants, name)
		for i, n := range r.order {
			if n == name {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
	}
	r.mu.Unlock()
	if t == nil {
		return false
	}
	t.mu.Lock()
	cancel := t.cancel
	t.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// Wait blocks until every background onboarding has returned (after
// cancelling their context via the caller's shutdown path). It is
// unbounded; shutdown paths with a deadline should use WaitCtx.
func (r *Registry) Wait() { r.wg.Wait() }

// WaitCtx is Wait bounded by ctx: it returns ctx.Err() if the
// onboardings have not all returned by then. A misbehaving model can
// then cost at most a leaked goroutine on exit, never a hung
// shutdown.
func (r *Registry) WaitCtx(ctx context.Context) error {
	return par.Await(ctx, r.wg.Wait)
}

func (r *Registry) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// EvalGateError reports a candidate model rejected by the accuracy
// gate.
type EvalGateError struct {
	Accuracy, Min float64
}

func (e *EvalGateError) Error() string {
	return fmt.Sprintf("registry: eval gate: accuracy %.3f below minimum %.3f", e.Accuracy, e.Min)
}
