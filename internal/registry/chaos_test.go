package registry_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	goruntime "runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/augment"
	"repro/internal/boot"
	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/models"
	"repro/internal/registry"
)

// tinyParams shrinks the pipeline so each onboarding synthesizes a
// corpus of dozens, not thousands, of pairs.
func tinyParams() *core.Params {
	return &core.Params{
		Instantiation: generator.Params{SizeSlotFills: 2, SizeTables: 2},
		Augmentation:  augment.Params{SizePara: 1, NumPara: 1, NumMissing: 1, RandDropP: 0.2},
	}
}

// tinySketch is a sketch configuration small enough to train in
// milliseconds while still taking several optimizer steps (so a
// checkpoint can land mid-train).
func tinySketch() *models.SketchConfig {
	return &models.SketchConfig{
		EmbDim: 6, HidDim: 8, LR: 0.01, Epochs: 3, MaxSlots: 6,
		GradClip: 5, MinCount: 1, BatchSize: 8, Workers: 2, Seed: 5,
	}
}

// waitForGoroutines retries until the goroutine count drops to the
// baseline, failing with a full stack dump if it never does — the
// stdlib-only goleak check (same pattern as internal/serve).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	for i := 0; i < 250; i++ {
		if goruntime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := goruntime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s", goruntime.NumGoroutine(), baseline, buf[:n])
}

// waitForState polls a tenant until its status reaches one of the
// wanted terminal states.
func waitForState(t *testing.T, ten *registry.Tenant, want ...registry.State) registry.Status {
	t.Helper()
	var st registry.Status
	for i := 0; i < 500; i++ {
		st = ten.Status()
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("tenant %s never reached %v; status %+v", ten.Name, want, st)
	return st
}

// buildUnit assembles one nn-model tenant unit for installing as a
// base tenant.
func buildUnit(t *testing.T, schemaName string, seed int64) *boot.Unit {
	t.Helper()
	u, err := boot.Build(context.Background(), boot.Spec{
		Schema: schemaName, Model: "nn", Seed: seed, Rows: 4, Params: tinyParams(),
	})
	if err != nil {
		t.Fatalf("building %s: %v", schemaName, err)
	}
	return u
}

// TestOnboardFleetUnderLiveTraffic is the headline chaos scenario: a
// registry serving two base tenants takes a fleet of twelve generated
// schemas through background onboarding while reader goroutines hammer
// the base tenants the whole time, and one base tenant is re-onboarded
// mid-flight (a live version swap). The invariants: no reader ever
// observes an empty slot or a nil model (zero dropped requests), the
// swapped tenant ends on a higher version, every fleet member reaches
// ready, and no goroutine outlives Registry.Wait. Run with -race.
func TestOnboardFleetUnderLiveTraffic(t *testing.T) {
	baseline := goruntime.NumGoroutine()

	r := registry.New(registry.Config{Workers: 2, EvalQuestions: -1})
	base := []string{"synth:1", "synth:2"}
	for i, name := range base {
		r.Install(boot.TenantName(name), buildUnit(t, name, int64(i+1)))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Live traffic: readers resolve the slot and run a model-level
	// translation on every iteration. A nil version or nil model is a
	// dropped request.
	var dropped, served atomic.Int64
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		tenant := r.Lookup(boot.TenantName(base[i%len(base)]))
		//lint:allow rawgo chaos readers are the live traffic the registry must survive; joined via readers.Wait below
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := tenant.Current()
				if v == nil || v.Unit == nil || v.Unit.Model == nil {
					dropped.Add(1)
					continue
				}
				out := v.Unit.Model.Translate(
					strings.Fields("show the name"), models.SchemaTokens(v.Unit.Schema))
				if out == nil {
					dropped.Add(1)
					continue
				}
				served.Add(1)
			}
		}()
	}

	// The fleet: twelve generated schemas onboarding in the background.
	const fleet = 12
	tenants := make([]*registry.Tenant, 0, fleet)
	for i := 0; i < fleet; i++ {
		ten, err := r.Onboard(ctx, boot.Spec{
			Schema: fmt.Sprintf("%s%d", boot.SynthPrefix, 100+i),
			Model:  "nn", Rows: 3, Seed: int64(100 + i), Params: tinyParams(),
		})
		if err != nil {
			t.Fatalf("onboard %d: %v", i, err)
		}
		tenants = append(tenants, ten)
	}

	// Mid-flight, re-onboard a base tenant: a background rebuild that
	// must swap in without the readers noticing.
	swapTarget := r.Lookup(boot.TenantName(base[0]))
	before := swapTarget.Current().Seq
	if _, err := r.Onboard(ctx, boot.Spec{
		Schema: base[0], Model: "nn", Rows: 4, Seed: 1, Params: tinyParams(),
	}); err != nil {
		t.Fatalf("re-onboard %s: %v", base[0], err)
	}

	for _, ten := range tenants {
		if st := waitForState(t, ten, registry.StateReady); st.Version != 1 {
			t.Fatalf("fleet tenant %s ready at version %d, want 1", ten.Name, st.Version)
		}
	}
	st := waitForState(t, swapTarget, registry.StateReady)
	if st.Version != before+1 {
		t.Fatalf("swapped tenant at version %d, want %d", st.Version, before+1)
	}

	close(stop)
	readers.Wait()
	r.Wait()

	if n := dropped.Load(); n != 0 {
		t.Fatalf("%d dropped requests during onboarding/swap (served %d)", n, served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("traffic generator never served a request; test proved nothing")
	}
	if got := len(r.Names()); got != len(base)+fleet {
		t.Fatalf("registry holds %d tenants, want %d", got, len(base)+fleet)
	}
	waitForGoroutines(t, baseline)
}

// saveFuller is the subset of models that can serialize themselves
// fully (sketch, seq2seq).
type saveFuller interface {
	SaveFull(w io.Writer) error
}

// TestKilledOnboardingResumesBitIdentical: onboarding is cancelled at
// the first training checkpoint (the in-process analog of SIGKILLing
// the process — the atomic checkpoint file is all that survives
// either way). Re-onboarding the same spec must (a) report Resumed
// while in flight, and (b) converge to the byte-identical model an
// uninterrupted build produces.
func TestKilledOnboardingResumesBitIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := boot.Spec{
		Schema: "synth:42", Model: "sketch", Seed: 42, Rows: 3,
		Params: tinyParams(), Sketch: tinySketch(),
	}

	// The uninterrupted reference build.
	want, err := boot.Build(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var wantBytes bytes.Buffer
	if err := want.Model.(saveFuller).SaveFull(&wantBytes); err != nil {
		t.Fatal(err)
	}

	r := registry.New(registry.Config{
		Workers: 1, EvalQuestions: -1, CheckpointDir: dir,
	})

	// Round 1: kill at the first checkpoint.
	kctx, kill := context.WithCancel(context.Background())
	defer kill()
	killed := spec
	killed.Train = models.TrainOptions{
		CheckpointEvery: 2,
		OnCheckpoint:    func(*models.Checkpoint) { kill() },
	}
	ten, err := r.Onboard(kctx, killed)
	if err != nil {
		t.Fatal(err)
	}
	st := waitForState(t, ten, registry.StateFailed)
	if st.Error == "" {
		t.Fatal("killed onboarding reported no error")
	}
	if cur := ten.Current(); cur != nil {
		t.Fatalf("killed onboarding installed version %d", cur.Seq)
	}

	// Round 2: same spec, fresh context — must resume from the
	// checkpoint the kill left behind.
	resumedSeen := false
	resumed := spec
	resumed.Train = models.TrainOptions{
		CheckpointEvery: 2,
		OnCheckpoint:    func(*models.Checkpoint) { resumedSeen = true },
	}
	ten2, err := r.Onboard(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if ten2 != ten {
		t.Fatal("re-onboard resolved to a different tenant")
	}
	st = waitForState(t, ten2, registry.StateReady)
	if st.Version != 1 {
		t.Fatalf("resumed onboarding at version %d, want 1", st.Version)
	}
	_ = resumedSeen // checkpoints may or may not fire again post-resume
	r.Wait()

	var gotBytes bytes.Buffer
	if err := ten2.Current().Unit.Model.(saveFuller).SaveFull(&gotBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBytes.Bytes(), gotBytes.Bytes()) {
		t.Fatal("resumed onboarding produced a model that differs from the uninterrupted build")
	}
}

// badModel translates everything to garbage: it trains fine but can
// never pass an exact-match eval gate.
type badModel struct{}

func (badModel) Name() string                     { return "bad" }
func (badModel) Train([]models.Example)           {}
func (badModel) Translate(_, _ []string) []string { return []string{"select", "garbage"} }

// TestFailedEvalRollsBack: a tenant with a serving version is
// re-onboarded with a model that flunks the accuracy gate. The
// candidate must be rejected before the swap — the serving version
// (same pointer, same seq) keeps answering throughout, and the status
// surfaces the gate failure as rolled_back.
func TestFailedEvalRollsBack(t *testing.T) {
	r := registry.New(registry.Config{
		Workers: 1, MinAccuracy: 0.5, EvalQuestions: 8, EvalWorkers: 2,
	})
	name := boot.TenantName("synth:7")
	r.Install(name, buildUnit(t, "synth:7", 7))
	ten := r.Lookup(name)
	v1 := ten.Current()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Concurrent readers across the failed onboarding: the serving
	// slot must never change, let alone empty.
	stop := make(chan struct{})
	var sawOther atomic.Int64
	var readers sync.WaitGroup
	readers.Add(1)
	//lint:allow rawgo the reader races the failing onboarding on purpose; joined via readers.Wait below
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if ten.Current() != v1 {
				sawOther.Add(1)
			}
		}
	}()

	if _, err := r.Onboard(ctx, boot.Spec{
		Schema: "synth:7", Seed: 7, Rows: 3, Params: tinyParams(),
		Factory: func(int64) models.Translator { return badModel{} },
	}); err != nil {
		t.Fatal(err)
	}
	st := waitForState(t, ten, registry.StateRolledBack)
	close(stop)
	readers.Wait()
	r.Wait()

	if !strings.Contains(st.Error, "eval gate") {
		t.Fatalf("status error = %q, want the eval-gate rejection", st.Error)
	}
	if ten.Current() != v1 {
		t.Fatal("serving version changed despite the failed gate")
	}
	if n := sawOther.Load(); n != 0 {
		t.Fatalf("readers observed a foreign version %d times during the failed onboarding", n)
	}
	if st.Version != v1.Seq {
		t.Fatalf("status version %d, want serving %d", st.Version, v1.Seq)
	}
}

// TestExplicitRollback: Rollback swaps the predecessor back in
// atomically, and swaps forward again on a second call.
func TestExplicitRollback(t *testing.T) {
	r := registry.New(registry.Config{Workers: 1})
	name := boot.TenantName("synth:9")
	u := buildUnit(t, "synth:9", 9)
	r.Install(name, u)
	ten := r.Lookup(name)
	if ten.Rollback() {
		t.Fatal("rollback with no predecessor reported success")
	}
	r.Install(name, buildUnit(t, "synth:9", 10))
	if got := ten.Current().Seq; got != 2 {
		t.Fatalf("after second install, seq = %d, want 2", got)
	}
	if !ten.Rollback() {
		t.Fatal("rollback with a predecessor failed")
	}
	if got := ten.Current().Seq; got != 1 {
		t.Fatalf("after rollback, seq = %d, want 1", got)
	}
	if st := ten.Status(); st.State != registry.StateRolledBack {
		t.Fatalf("state = %s, want rolled_back", st.State)
	}
	if !ten.Rollback() {
		t.Fatal("roll-forward failed")
	}
	if got := ten.Current().Seq; got != 2 {
		t.Fatalf("after roll-forward, seq = %d, want 2", got)
	}
}

// blockingTrainer blocks in TrainContext until its context is
// cancelled — the hook for testing Remove-mid-onboard.
type blockingTrainer struct {
	started chan struct{}
}

func (b *blockingTrainer) Name() string                     { return "blocking" }
func (b *blockingTrainer) Train([]models.Example)           {}
func (b *blockingTrainer) Translate(_, _ []string) []string { return []string{"select"} }
func (b *blockingTrainer) TrainContext(ctx context.Context, _ []models.Example, _ models.TrainOptions) error {
	close(b.started)
	<-ctx.Done()
	return ctx.Err()
}

// TestRemoveCancelsInFlightOnboarding: deleting a tenant mid-build
// cancels its onboarding; Wait returns and the tenant is gone.
func TestRemoveCancelsInFlightOnboarding(t *testing.T) {
	baseline := goruntime.NumGoroutine()
	r := registry.New(registry.Config{Workers: 1, EvalQuestions: -1})
	bt := &blockingTrainer{started: make(chan struct{})}
	ten, err := r.Onboard(context.Background(), boot.Spec{
		Schema: "synth:11", Seed: 11, Rows: 3, Params: tinyParams(),
		Factory: func(int64) models.Translator { return bt },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-bt.started // onboarding is now blocked inside training
	if !r.Remove(ten.Name) {
		t.Fatal("remove of an onboarding tenant failed")
	}
	r.Wait()
	if r.Lookup(ten.Name) != nil {
		t.Fatal("tenant still resolvable after Remove")
	}
	if r.Remove(ten.Name) {
		t.Fatal("second Remove reported success")
	}
	waitForGoroutines(t, baseline)
}

// TestOnboardRejectsConcurrentBuild: one build per tenant at a time.
func TestOnboardRejectsConcurrentBuild(t *testing.T) {
	r := registry.New(registry.Config{Workers: 1, EvalQuestions: -1})
	bt := &blockingTrainer{started: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	spec := boot.Spec{
		Schema: "synth:13", Seed: 13, Rows: 3, Params: tinyParams(),
		Factory: func(int64) models.Translator { return bt },
	}
	if _, err := r.Onboard(ctx, spec); err != nil {
		t.Fatal(err)
	}
	<-bt.started
	if _, err := r.Onboard(ctx, spec); err == nil {
		t.Fatal("second concurrent onboard of the same tenant succeeded")
	}
	cancel()
	r.Wait()
}
