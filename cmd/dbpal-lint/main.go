// Command dbpal-lint runs the repository's static-analysis suite
// (internal/analysis): stdlib-only analyzers that machine-check the
// pipeline's determinism and concurrency invariants. Per-file checks
// cover explicit seeds (determinism, seedsplit), sorted map iteration
// (maporder), all concurrency through internal/par / internal/pipeline
// (rawgo), dropped errors (errdrop), and context-first signatures
// (ctxfirst). On top of a module-wide call graph with a propagated
// "may block" fact, the interprocedural checks enforce the serving
// stack's concurrency contracts: no mutex held across a blocking call
// (lockheld), no mixed atomic/plain field access (atomicfield),
// provable goroutine exit paths (goexit), sender-side-only channel
// closes (chanclose), and contexts that actually reach the blocking
// work (ctxdrop).
//
//	dbpal-lint ./...            lint the whole module (text output)
//	dbpal-lint -json ./cmd/...  machine-readable findings
//	dbpal-lint -list            describe the analyzers
//	dbpal-lint -stale-allow     also fail on unused //lint:allow directives
//
// Findings print as path:line:col: [check] message, sorted by
// position, and the exit status is 1 when there are any — wire it
// straight into CI. Suppress an intentional site with an end-of-line
// (or preceding-line) directive:
//
//	t0 := time.Now() //lint:allow determinism timing is reporting-only
//
// Every directive must suppress at least one live finding; run with
// -stale-allow to flag the ones that no longer do.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON report")
		list    = flag.Bool("list", false, "list the analyzers and exit")
		quiet   = flag.Bool("q", false, "suppress the findings summary on stderr")
		stale   = flag.Bool("stale-allow", false, "report //lint:allow directives that suppress nothing")
	)
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	mod, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbpal-lint:", err)
		os.Exit(2)
	}
	for _, p := range mod.Pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "dbpal-lint: warning: %s: %v\n", p.Path, terr)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs := selectPackages(mod, patterns)
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "dbpal-lint: no packages match %s\n", strings.Join(patterns, " "))
		os.Exit(2)
	}

	diags, staleDiags := analysis.RunStale(mod, pkgs, suite)
	if *stale {
		diags = append(diags, staleDiags...)
		analysis.SortDiagnostics(diags)
	}
	if *jsonOut {
		err = analysis.FormatJSON(os.Stdout, diags)
	} else {
		err = analysis.FormatText(os.Stdout, diags)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbpal-lint:", err)
		os.Exit(2)
	}
	if !*quiet {
		// The suppression count feeds the CI job summary: a creeping
		// number is a smell even while the tree lints clean.
		fmt.Fprintf(os.Stderr, "dbpal-lint: %d finding(s) in %d package(s), %d suppression(s) in force\n",
			len(diags), len(pkgs), analysis.CountSuppressions(mod, pkgs))
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectPackages filters the module's packages by go-style patterns:
// "./..." (everything), "./cmd/..." (subtree), or a package directory
// like "./internal/par".
func selectPackages(mod *analysis.Module, patterns []string) []*analysis.Package {
	var out []*analysis.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		for _, p := range mod.Pkgs {
			if !matchPattern(pat, p.RelDir) || seen[p.Path+" "+p.Name] {
				continue
			}
			seen[p.Path+" "+p.Name] = true
			out = append(out, p)
		}
	}
	return out
}

func matchPattern(pat, relDir string) bool {
	if pat == "..." || pat == "" {
		return true
	}
	if pat == "." {
		return relDir == "."
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return relDir == sub || strings.HasPrefix(relDir, sub+"/")
	}
	return relDir == pat
}
