// Command dbpal-eval evaluates a trained model (saved by dbpal-train)
// or a freshly bootstrapped one on the Patients benchmark, printing
// per-category semantic-equivalence accuracy and, optionally, every
// failure for error analysis.
//
//	dbpal-eval -load patients.model -model sketch
//	dbpal-eval -train -failures
//	dbpal-eval -critic -schema flights -critic-questions 200
//
// -critic switches to the execution-guided critic comparison: a model
// is bootstrapped for -schema, a spider-style workload is sampled, and
// every question's candidate beam is finalized twice — with and
// without the critic — reporting the valid-SQL rate, exact-match
// rate, repair count, and rejection count of each arm. The report is
// bit-identical at any -workers count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	dbpal "repro"
	"repro/internal/boot"
	"repro/internal/critic"
	"repro/internal/eval"
	"repro/internal/fault"
	"repro/internal/patients"
	"repro/internal/spider"
)

func main() {
	var (
		modelKind  = flag.String("model", "sketch", "translator: sketch | seq2seq")
		loadPath   = flag.String("load", "", "model file saved by dbpal-train")
		train      = flag.Bool("train", false, "bootstrap and train a fresh model instead of loading")
		failures   = flag.Bool("failures", false, "print every failed case")
		seed       = flag.Int64("seed", 1, "pipeline/training seed for -train")
		execGuided = flag.Int("execguided", 1, "try up to N ranked candidates per question")
		workers    = flag.Int("workers", 0, "evaluation worker-pool bound (0 = all cores)")

		criticOn  = flag.Bool("critic", false, "run the critic-on/off comparison on a spider-style workload instead of the Patients benchmark")
		schemaN   = flag.String("schema", "patients", "schema for the -critic workload: patients | flights | ... | synth:<seed>")
		criticQs  = flag.Int("critic-questions", 200, "workload size for -critic")
		rowBudget = flag.Int("critic-budget", 0, "critic dry-run row budget (0 = default)")
		criticTO  = flag.Duration("critic-timeout", 0, "critic dry-run deadline (0 = default)")
		rows      = flag.Int("rows", 40, "synthetic rows per table for non-patients schemas")
		corrupt   = flag.Int("corrupt", 0, "with -critic: inject identifier typos into one-in-N questions' decodes to exercise repair (0 = off)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the evaluation; the report for the cases
	// completed so far is still printed (flagged as partial).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *criticOn {
		if err := runCritic(ctx, criticConfig{
			schema: *schemaN, model: *modelKind, loadPath: *loadPath, seed: *seed,
			rows: *rows, questions: *criticQs, execGuided: *execGuided, workers: *workers,
			corrupt: *corrupt,
			critic:  critic.Config{RowBudget: *rowBudget, Timeout: *criticTO, Seed: *seed},
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// Model construction goes through the shared boot path: -load reads
	// saved weights, -train runs the full bootstrap (the same steps
	// dbpal and dbpal-serve use).
	var model dbpal.Translator
	switch {
	case *loadPath != "":
		m, err := boot.LoadModel(*modelKind, *loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		model = m
	case *train:
		t0 := time.Now() //lint:allow determinism wall-clock timing is progress reporting only
		u, err := boot.Build(ctx, boot.Spec{
			Schema: "patients", Model: *modelKind, Seed: *seed,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		model = u.Model
		fmt.Printf("trained in %s\n", time.Since(t0).Round(time.Millisecond))
	default:
		fmt.Fprintln(os.Stderr, "pass -load <file> or -train")
		os.Exit(2)
	}

	db, err := patients.Database()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cases := patients.Cases()
	rep, evalErr := eval.EvalPatientsCtx(ctx, model, db, cases, *execGuided, *workers)
	if evalErr != nil {
		fmt.Fprintf(os.Stderr, "evaluation interrupted (%v): partial report over %d/%d cases\n",
			evalErr, rep.Overall.Total, len(cases))
	}

	fmt.Printf("\nPatients benchmark (%s model, semantic equivalence)\n", model.Name())
	for _, c := range patients.Categories {
		fmt.Printf("  %-14s %s\n", c, rep.ByCategory[c])
	}
	fmt.Printf("  %-14s %s\n", "Overall", &rep.Overall)

	if *failures {
		fmt.Printf("\n%d failures:\n", len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Printf("- [%s] %s\n  gold: %s\n", f.Case.ID, f.Case.NL, f.Case.SQL)
			if f.Pred != "" {
				fmt.Printf("  pred: %s\n", f.Pred)
			}
			if f.Err != "" {
				fmt.Printf("  err:  %s\n", f.Err)
			}
		}
	}
	if evalErr != nil {
		os.Exit(1)
	}
}

// criticConfig parameterizes the -critic comparison run.
type criticConfig struct {
	schema, model, loadPath string
	seed                    int64
	rows, questions         int
	execGuided, workers     int
	corrupt                 int
	critic                  critic.Config
}

// runCritic bootstraps a model for the schema, samples the workload,
// and prints the critic-on/off comparison.
func runCritic(ctx context.Context, cfg criticConfig) error {
	u, err := boot.Build(ctx, boot.Spec{
		Schema:   cfg.schema,
		Model:    cfg.model,
		LoadPath: cfg.loadPath,
		Seed:     cfg.seed,
		Rows:     cfg.rows,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	model := u.Model
	if cfg.corrupt > 0 {
		var cols []string
		for _, t := range u.Schema.Tables {
			for _, c := range t.Columns {
				cols = append(cols, c.Name)
			}
		}
		model = fault.NewTypos(model, fault.NewInjector(cfg.seed, cfg.corrupt), cols)
	}
	qs := spider.Workload(u.Schema, cfg.questions, cfg.seed+7919)
	rep, evalErr := eval.EvalCriticCtx(ctx, model, u.Schema, u.DB, qs, cfg.execGuided, cfg.critic, cfg.workers)
	if evalErr != nil {
		fmt.Fprintf(os.Stderr, "evaluation interrupted (%v): partial report over %d/%d questions\n",
			evalErr, rep.Questions, len(qs))
	}
	fmt.Printf("\nExecution-guided critic (schema %s, %d questions, %s model, execguided %d)\n",
		u.Schema.Name, rep.Questions, model.Name(), cfg.execGuided)
	fmt.Printf("  critic off  %s\n", rep.Off)
	fmt.Printf("  critic on   %s\n", rep.On)
	fmt.Printf("  valid-rate delta: %+.3f\n", rep.On.Valid.Acc()-rep.Off.Valid.Acc())
	if evalErr != nil {
		return fmt.Errorf("partial: %w", evalErr)
	}
	return nil
}
