// Command dbpal-eval evaluates a trained model (saved by dbpal-train)
// or a freshly bootstrapped one on the Patients benchmark, printing
// per-category semantic-equivalence accuracy and, optionally, every
// failure for error analysis.
//
//	dbpal-eval -load patients.model -model sketch
//	dbpal-eval -train -failures
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	dbpal "repro"
	"repro/internal/boot"
	"repro/internal/eval"
	"repro/internal/patients"
)

func main() {
	var (
		modelKind  = flag.String("model", "sketch", "translator: sketch | seq2seq")
		loadPath   = flag.String("load", "", "model file saved by dbpal-train")
		train      = flag.Bool("train", false, "bootstrap and train a fresh model instead of loading")
		failures   = flag.Bool("failures", false, "print every failed case")
		seed       = flag.Int64("seed", 1, "pipeline/training seed for -train")
		execGuided = flag.Int("execguided", 1, "try up to N ranked candidates per question")
		workers    = flag.Int("workers", 0, "evaluation worker-pool bound (0 = all cores)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the evaluation; the report for the cases
	// completed so far is still printed (flagged as partial).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Model construction goes through the shared boot path: -load reads
	// saved weights, -train runs the full bootstrap (the same steps
	// dbpal and dbpal-serve use).
	var model dbpal.Translator
	switch {
	case *loadPath != "":
		m, err := boot.LoadModel(*modelKind, *loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		model = m
	case *train:
		t0 := time.Now() //lint:allow determinism wall-clock timing is progress reporting only
		u, err := boot.Build(ctx, boot.Spec{
			Schema: "patients", Model: *modelKind, Seed: *seed,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		model = u.Model
		fmt.Printf("trained in %s\n", time.Since(t0).Round(time.Millisecond))
	default:
		fmt.Fprintln(os.Stderr, "pass -load <file> or -train")
		os.Exit(2)
	}

	db, err := patients.Database()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cases := patients.Cases()
	rep, evalErr := eval.EvalPatientsCtx(ctx, model, db, cases, *execGuided, *workers)
	if evalErr != nil {
		fmt.Fprintf(os.Stderr, "evaluation interrupted (%v): partial report over %d/%d cases\n",
			evalErr, rep.Overall.Total, len(cases))
	}

	fmt.Printf("\nPatients benchmark (%s model, semantic equivalence)\n", model.Name())
	for _, c := range patients.Categories {
		fmt.Printf("  %-14s %s\n", c, rep.ByCategory[c])
	}
	fmt.Printf("  %-14s %s\n", "Overall", &rep.Overall)

	if *failures {
		fmt.Printf("\n%d failures:\n", len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Printf("- [%s] %s\n  gold: %s\n", f.Case.ID, f.Case.NL, f.Case.SQL)
			if f.Pred != "" {
				fmt.Printf("  pred: %s\n", f.Pred)
			}
			if f.Err != "" {
				fmt.Printf("  err:  %s\n", f.Err)
			}
		}
	}
	if evalErr != nil {
		os.Exit(1)
	}
}
