// Command dbpal-bench regenerates the tables and figures of the DBPal
// paper's evaluation (SIGMOD 2020, §6) on the synthetic substrate of
// this repository:
//
//	dbpal-bench -table 2      Spider benchmark by difficulty
//	dbpal-bench -table 3      Patients benchmark by linguistic category
//	dbpal-bench -table 4      pattern-coverage breakdown
//	dbpal-bench -figure 3     seed-template fraction sweep
//	dbpal-bench -figure 4     hyperparameter random-search histogram
//	dbpal-bench -ablation     pipeline design-choice ablations
//	dbpal-bench -speedup      parallel-scaling check (workers=1 vs -workers)
//	dbpal-bench -all          everything above (except -speedup)
//
// Flags -quick (reduced scale), -model sketch|seq2seq, and -seed
// control the run; -workers bounds every worker pool (0 = all cores,
// 1 = fully sequential — results are identical either way) and -batch
// sets the training minibatch size (1 = classic per-example SGD).
// Results are printed in the same row/series layout the paper reports;
// see EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	goruntime "runtime"
	"syscall"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate table 2, 3, or 4")
		figure    = flag.Int("figure", 0, "regenerate figure 3 or 4")
		ablation  = flag.Bool("ablation", false, "run the pipeline ablations")
		searchcmp = flag.Bool("searchcmp", false, "compare random vs model-based hyperparameter search")
		all       = flag.Bool("all", false, "run every experiment")
		quick     = flag.Bool("quick", false, "reduced scale (faster, noisier)")
		model     = flag.String("model", "sketch", "translator: sketch | seq2seq")
		seed      = flag.Int64("seed", 7, "experiment seed")
		trials    = flag.Int("trials", 0, "override hyperopt trial count (figure 4)")
		workers   = flag.Int("workers", 0, "worker-pool bound for every parallel stage (0 = all cores)")
		batch     = flag.Int("batch", 1, "training minibatch size (1 = per-example SGD, the paper trajectory)")
		speedup   = flag.Bool("speedup", false, "measure parallel speedup: quick Spider experiment at workers=1 vs -workers")
	)
	flag.Parse()

	scale := experiments.DefaultScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	scale.ModelKind = *model
	scale.Seed = *seed
	scale.Workers = *workers
	scale.Sketch.BatchSize = *batch
	scale.Seq2Seq.BatchSize = *batch
	if *trials > 0 {
		scale.HyperoptTrials = *trials
	}

	// SIGINT/SIGTERM stop the suite at the next experiment boundary:
	// the experiment in flight finishes and prints, later ones are
	// skipped.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	ran := false
	start := time.Now() //lint:allow determinism wall-clock timing is benchmark reporting only
	run := func(name string, fn func()) {
		if ctx.Err() != nil {
			fmt.Printf("[%s skipped: interrupted]\n\n", name)
			return
		}
		t0 := time.Now() //lint:allow determinism wall-clock timing is benchmark reporting only
		fn()
		fmt.Printf("[%s finished in %s]\n\n", name, time.Since(t0).Round(time.Millisecond))
		ran = true
	}

	wantTable := func(n int) bool { return *all || *table == n }
	wantFigure := func(n int) bool { return *all || *figure == n }

	if wantTable(2) || wantTable(4) {
		run("spider experiment", func() {
			e := experiments.RunSpider(scale)
			if wantTable(2) {
				fmt.Println(e.Table2())
			}
			if wantTable(4) {
				fmt.Println(e.Table4())
			}
		})
	}
	if wantTable(3) {
		run("patients experiment", func() {
			e := experiments.RunPatients(scale)
			fmt.Println(e.Table3())
		})
	}
	if wantFigure(3) {
		run("figure 3", func() {
			fmt.Println(experiments.RunFigure3(scale).Format())
		})
	}
	if wantFigure(4) {
		run("figure 4", func() {
			fmt.Println(experiments.RunFigure4(scale).Format())
		})
	}
	if *all || *ablation {
		run("ablations", func() {
			fmt.Println(experiments.RunAblations(scale).Format())
		})
	}
	if *speedup {
		run("speedup", func() {
			// The quick-scale Spider experiment, once sequentially and
			// once on the requested pool. Accuracy tables must match
			// byte-for-byte — the worker count may only buy time.
			sc := experiments.QuickScale()
			sc.ModelKind = *model
			sc.Seed = *seed
			sc.Sketch.BatchSize = *batch
			sc.Seq2Seq.BatchSize = *batch

			sc.Workers = 1
			t1 := time.Now() //lint:allow determinism wall-clock timing is what -speedup measures
			seq := experiments.RunSpider(sc)
			d1 := time.Since(t1)

			sc.Workers = *workers
			tN := time.Now() //lint:allow determinism wall-clock timing is what -speedup measures
			parl := experiments.RunSpider(sc)
			dN := time.Since(tN)

			fmt.Printf("workers=1: %s\nworkers=%d (0 = all %d cores): %s\nspeedup: %.2fx\n",
				d1.Round(time.Millisecond), *workers, goruntime.NumCPU(), dN.Round(time.Millisecond),
				d1.Seconds()/dN.Seconds())
			if seq.Table2() != parl.Table2() || seq.Table4() != parl.Table4() {
				fmt.Println("ERROR: accuracy tables differ between worker counts")
				fmt.Println("--- workers=1 ---\n" + seq.Table2() + seq.Table4())
				fmt.Println("--- parallel ---\n" + parl.Table2() + parl.Table4())
				os.Exit(1)
			}
			fmt.Println("accuracy tables byte-identical across worker counts")
			fmt.Println(parl.Table2())
		})
	}
	if *searchcmp {
		run("search comparison", func() {
			cmpScale := scale
			if cmpScale.HyperoptTrials > 16 {
				cmpScale.HyperoptTrials = 16 // two full searches; keep the budget sane
			}
			fmt.Println(experiments.RunSearchComparison(cmpScale).Format())
		})
	}

	if !ran && ctx.Err() == nil {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))
	if ctx.Err() != nil {
		os.Exit(1)
	}
}
