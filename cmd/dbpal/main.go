// Command dbpal is the interactive natural-language-to-SQL interface
// of the paper's Figure 1: it bootstraps a DBPal model for a chosen
// schema — no manually labeled training data, only the schema and the
// seed templates — and then answers NL questions typed on stdin,
// showing the translated SQL and the tabular result.
//
//	dbpal -schema patients
//	> show the names of all patients with age 80
//
// Schemas: "patients" (the paper's benchmark database) or any schema
// of the synthetic Spider zoo (flights, college, geo, ...). Use -model
// to pick the translator architecture and -load to reuse weights saved
// by dbpal-train.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	dbpal "repro"
	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/patients"
	"repro/internal/spider"
)

func main() {
	var (
		schemaName = flag.String("schema", "patients", "schema: patients | flights | college | geo | ...")
		modelKind  = flag.String("model", "sketch", "translator: sketch | seq2seq")
		loadPath   = flag.String("load", "", "load model weights saved by dbpal-train instead of training")
		seed       = flag.Int64("seed", 1, "pipeline and training seed")
		rows       = flag.Int("rows", 40, "synthetic rows per table for non-patients schemas")
		verbose    = flag.Bool("verbose", false, "print the full translation lifecycle per question")
		execGuided = flag.Int("execguided", 1, "try up to N ranked candidates, keeping the first that executes")
		deadline   = flag.Duration("deadline", 0, "per-question inference deadline per tier (0 = none)")
		fallback   = flag.Bool("fallback", true, "degrade to a template nearest-neighbor tier when the primary model fails")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the question in flight and exit the loop.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	s, db, err := resolveSchema(*schemaName, *rows, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The training corpus also feeds the nearest-neighbor fallback
	// tier, so it is synthesized even when the primary model's weights
	// are loaded from disk.
	var exs []dbpal.Example
	if *loadPath == "" || *fallback {
		pairs := dbpal.GenerateTrainingData(s, dbpal.DefaultParams(), *seed)
		fmt.Printf("pipeline synthesized %d NL-SQL pairs\n", len(pairs))
		exs = dbpal.TrainingExamples(pairs, s)
	}

	var model dbpal.Translator
	if *loadPath != "" {
		model, err = loadModel(*modelKind, *loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded %s model from %s\n", *modelKind, *loadPath)
	} else {
		fmt.Printf("bootstrapping DBPal for schema %q (%s model)...\n", s.Name, *modelKind)
		t0 := time.Now() //lint:allow determinism wall-clock timing is progress reporting only
		model = newModel(*modelKind, *seed)
		model.Train(exs)
		fmt.Printf("  trained in %s\n", time.Since(t0).Round(time.Millisecond))
	}

	nli := dbpal.NewInterface(db, model)
	nli.ExecutionGuided = *execGuided
	nli.Deadline = *deadline
	if *fallback {
		nn := models.NewNearestNeighbor()
		nn.Train(exs)
		nli.Fallbacks = []dbpal.Translator{nn}
	}
	fmt.Println("type a question (empty line or ctrl-d to quit):")
	sc := bufio.NewScanner(os.Stdin)
	for ctx.Err() == nil {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			break
		}
		if *verbose {
			q, trace, err := nli.TranslateTraceContext(ctx, line)
			fmt.Println(indent(trace.String(), "  "))
			if err != nil {
				fmt.Printf("  error: %v\n", err)
				continue
			}
			res, execErr := nli.DB.Execute(q)
			if execErr != nil {
				fmt.Printf("  error: %v\n", execErr)
				continue
			}
			fmt.Println(indent(res.String(), "  "))
			continue
		}
		res, q, err := nli.AskContext(ctx, line)
		if err != nil {
			fmt.Printf("  error: %v\n", err)
			continue
		}
		fmt.Printf("  SQL: %s\n%s\n", q, indent(res.String(), "  "))
	}
	if ctx.Err() != nil {
		fmt.Println("\ninterrupted")
	}
}

func resolveSchema(name string, rows int, seed int64) (*dbpal.Schema, *dbpal.Database, error) {
	if name == "patients" {
		db, err := patients.Database()
		if err != nil {
			return nil, nil, err
		}
		return patients.Schema(), db, nil
	}
	s := spider.SchemaByName(name)
	if s == nil {
		var names []string
		for _, z := range spider.AllSchemas() {
			names = append(names, z.Name)
		}
		return nil, nil, fmt.Errorf("unknown schema %q; available: patients, %s", name, strings.Join(names, ", "))
	}
	db, err := engine.GenerateData(s, rows, seed)
	if err != nil {
		return nil, nil, err
	}
	return s, db, nil
}

func newModel(kind string, seed int64) dbpal.Translator {
	switch kind {
	case "seq2seq":
		cfg := dbpal.DefaultSeq2SeqConfig()
		cfg.Seed = seed
		return dbpal.NewSeq2Seq(cfg)
	default:
		cfg := dbpal.DefaultSketchConfig()
		cfg.Seed = seed
		return dbpal.NewSketch(cfg)
	}
}

func loadModel(kind, path string) (dbpal.Translator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var m dbpal.Translator
	if kind == "seq2seq" {
		m, err = models.LoadSeq2Seq(f)
	} else {
		m, err = models.LoadSketch(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
