// Command dbpal is the interactive natural-language-to-SQL interface
// of the paper's Figure 1: it bootstraps a DBPal model for a chosen
// schema — no manually labeled training data, only the schema and the
// seed templates — and then answers NL questions typed on stdin,
// showing the translated SQL and the tabular result.
//
//	dbpal -schema patients
//	> show the names of all patients with age 80
//
// Schemas: "patients" (the paper's benchmark database), any schema of
// the synthetic Spider zoo (flights, college, geo, ...), or
// "synth:<seed>" for a generated cross-domain schema. Use -model to
// pick the translator architecture and -load to reuse weights saved by
// dbpal-train. The whole construction path is shared with dbpal-serve
// and dbpal-eval through internal/boot.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/boot"
)

func main() {
	var (
		schemaName = flag.String("schema", "patients", "schema: patients | flights | college | geo | ... | synth:<seed>")
		modelKind  = flag.String("model", "sketch", "translator: sketch | seq2seq")
		loadPath   = flag.String("load", "", "load model weights saved by dbpal-train instead of training")
		seed       = flag.Int64("seed", 1, "pipeline and training seed")
		rows       = flag.Int("rows", 40, "synthetic rows per table for non-patients schemas")
		verbose    = flag.Bool("verbose", false, "print the full translation lifecycle per question")
		execGuided = flag.Int("execguided", 1, "try up to N ranked candidates, keeping the first that executes")
		deadline   = flag.Duration("deadline", 0, "per-question inference deadline per tier (0 = none)")
		fallback   = flag.Bool("fallback", true, "degrade to a template nearest-neighbor tier when the primary model fails")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the question in flight and exit the loop.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	t0 := time.Now() //lint:allow determinism wall-clock timing is progress reporting only
	u, err := boot.Build(ctx, boot.Spec{
		Schema:     *schemaName,
		Model:      *modelKind,
		LoadPath:   *loadPath,
		Seed:       *seed,
		Rows:       *rows,
		ExecGuided: *execGuided,
		Deadline:   *deadline,
		Fallback:   *fallback,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *loadPath == "" {
		fmt.Printf("  trained in %s\n", time.Since(t0).Round(time.Millisecond))
	}

	nli := u.Translator
	fmt.Println("type a question (empty line or ctrl-d to quit):")
	sc := bufio.NewScanner(os.Stdin)
	for ctx.Err() == nil {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			break
		}
		if *verbose {
			q, trace, err := nli.TranslateTraceContext(ctx, line)
			fmt.Println(indent(trace.String(), "  "))
			if err != nil {
				fmt.Printf("  error: %v\n", err)
				continue
			}
			res, execErr := nli.DB.Execute(q)
			if execErr != nil {
				fmt.Printf("  error: %v\n", execErr)
				continue
			}
			fmt.Println(indent(res.String(), "  "))
			continue
		}
		res, q, err := nli.AskContext(ctx, line)
		if err != nil {
			fmt.Printf("  error: %v\n", err)
			continue
		}
		fmt.Printf("  SQL: %s\n%s\n", q, indent(res.String(), "  "))
	}
	if ctx.Err() != nil {
		fmt.Println("\ninterrupted")
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
