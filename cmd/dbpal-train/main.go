// Command dbpal-train bootstraps a translation model for a schema
// using DBPal's synthesized training data and saves the trained model
// (configuration + vocabulary + weights) to a file that cmd/dbpal can
// load with -load.
//
//	dbpal-train -schema patients -model sketch -o patients.model
//
// Long runs can checkpoint and resume: -checkpoint-every N writes an
// atomic training checkpoint (weights, optimizer state, RNG position)
// every N optimizer steps, SIGINT/SIGTERM triggers a final checkpoint
// before exiting, and -resume continues a run from a checkpoint file
// with a final model byte-identical to the uninterrupted run.
//
//	dbpal-train -model seq2seq -checkpoint-every 500 -o p.model
//	dbpal-train -model seq2seq -resume p.model.ckpt -o p.model
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	dbpal "repro"
	"repro/internal/models"
	"repro/internal/patients"
	"repro/internal/spider"
)

func main() {
	var (
		schemaName = flag.String("schema", "patients", "schema: patients or a Spider-zoo name")
		modelKind  = flag.String("model", "sketch", "translator: sketch | seq2seq")
		out        = flag.String("o", "dbpal.model", "output model file")
		seed       = flag.Int64("seed", 1, "pipeline and training seed")
		epochs     = flag.Int("epochs", 0, "override training epochs")
		ckptEvery  = flag.Int("checkpoint-every", 0, "write a training checkpoint every N optimizer steps (0 = off)")
		ckptPath   = flag.String("checkpoint", "", "checkpoint file (default <out>.ckpt)")
		resumePath = flag.String("resume", "", "resume training from a checkpoint file")
	)
	flag.Parse()

	var s *dbpal.Schema
	if *schemaName == "patients" {
		s = patients.Schema()
	} else {
		s = spider.SchemaByName(*schemaName)
	}
	if s == nil {
		fmt.Fprintf(os.Stderr, "unknown schema %q\n", *schemaName)
		os.Exit(1)
	}

	// SIGINT/SIGTERM cancel the training context; the training loop
	// writes a final checkpoint (when checkpointing is configured)
	// before TrainContext returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := models.TrainOptions{CheckpointEvery: *ckptEvery}
	if *ckptEvery > 0 || *resumePath != "" {
		opts.CheckpointPath = *ckptPath
		if opts.CheckpointPath == "" {
			opts.CheckpointPath = *out + ".ckpt"
		}
	}
	if *resumePath != "" {
		ck, err := models.LoadCheckpoint(*resumePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Resume = ck
		fmt.Printf("resuming %s training from %s (epoch %d, step %d)\n", ck.Kind, *resumePath, ck.Epoch, ck.Step)
	}

	t0 := time.Now() //lint:allow determinism wall-clock timing is progress reporting only
	pairs := dbpal.GenerateTrainingData(s, dbpal.DefaultParams(), *seed)
	fmt.Printf("pipeline synthesized %d pairs for %q in %s\n", len(pairs), s.Name, time.Since(t0).Round(time.Millisecond))
	exs := dbpal.TrainingExamples(pairs, s)

	t1 := time.Now() //lint:allow determinism wall-clock timing is progress reporting only
	var (
		save     func(io.Writer) error
		trainErr error
		detail   string
	)
	switch *modelKind {
	case "seq2seq":
		cfg := dbpal.DefaultSeq2SeqConfig()
		cfg.Seed = *seed
		if *epochs > 0 {
			cfg.Epochs = *epochs
		}
		m := models.NewSeq2Seq(cfg)
		trainErr = m.TrainContext(ctx, exs, opts)
		save, detail = m.SaveFull, fmt.Sprintf("seq2seq (%d params)", m.NumParams())
	default:
		cfg := dbpal.DefaultSketchConfig()
		cfg.Seed = *seed
		if *epochs > 0 {
			cfg.Epochs = *epochs
		}
		m := models.NewSketch(cfg)
		trainErr = m.TrainContext(ctx, exs, opts)
		save, detail = m.SaveFull, fmt.Sprintf("sketch model (%d sketches)", m.NumSketches())
	}
	if trainErr != nil {
		if errors.Is(trainErr, context.Canceled) && opts.CheckpointPath != "" {
			fmt.Fprintf(os.Stderr, "interrupted: checkpoint saved to %s; resume with -resume %s\n",
				opts.CheckpointPath, opts.CheckpointPath)
		} else {
			fmt.Fprintln(os.Stderr, trainErr)
		}
		os.Exit(1)
	}
	fmt.Printf("trained %s in %s\n", detail, time.Since(t1).Round(time.Millisecond))

	// The model file is written atomically: a crash mid-write cannot
	// hand cmd/dbpal a truncated model.
	if err := models.WriteFileAtomic(*out, save); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("saved to %s\n", *out)
}
