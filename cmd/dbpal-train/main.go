// Command dbpal-train bootstraps a translation model for a schema
// using DBPal's synthesized training data and saves the trained model
// (configuration + vocabulary + weights) to a file that cmd/dbpal can
// load with -load.
//
//	dbpal-train -schema patients -model sketch -o patients.model
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	dbpal "repro"
	"repro/internal/models"
	"repro/internal/patients"
	"repro/internal/spider"
)

func main() {
	var (
		schemaName = flag.String("schema", "patients", "schema: patients or a Spider-zoo name")
		modelKind  = flag.String("model", "sketch", "translator: sketch | seq2seq")
		out        = flag.String("o", "dbpal.model", "output model file")
		seed       = flag.Int64("seed", 1, "pipeline and training seed")
		epochs     = flag.Int("epochs", 0, "override training epochs")
	)
	flag.Parse()

	var s *dbpal.Schema
	if *schemaName == "patients" {
		s = patients.Schema()
	} else {
		s = spider.SchemaByName(*schemaName)
	}
	if s == nil {
		fmt.Fprintf(os.Stderr, "unknown schema %q\n", *schemaName)
		os.Exit(1)
	}

	t0 := time.Now() //lint:allow determinism wall-clock timing is progress reporting only
	pairs := dbpal.GenerateTrainingData(s, dbpal.DefaultParams(), *seed)
	fmt.Printf("pipeline synthesized %d pairs for %q in %s\n", len(pairs), s.Name, time.Since(t0).Round(time.Millisecond))
	exs := dbpal.TrainingExamples(pairs, s)

	t1 := time.Now() //lint:allow determinism wall-clock timing is progress reporting only
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch *modelKind {
	case "seq2seq":
		cfg := dbpal.DefaultSeq2SeqConfig()
		cfg.Seed = *seed
		if *epochs > 0 {
			cfg.Epochs = *epochs
		}
		m := models.NewSeq2Seq(cfg)
		m.Train(exs)
		fmt.Printf("trained seq2seq (%d params) in %s\n", m.NumParams(), time.Since(t1).Round(time.Millisecond))
		if err := m.SaveFull(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		cfg := dbpal.DefaultSketchConfig()
		cfg.Seed = *seed
		if *epochs > 0 {
			cfg.Epochs = *epochs
		}
		m := models.NewSketch(cfg)
		m.Train(exs)
		fmt.Printf("trained sketch model (%d sketches) in %s\n", m.NumSketches(), time.Since(t1).Round(time.Millisecond))
		if err := m.SaveFull(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	// The model file is write-buffered by the OS; a dropped Close
	// error could hand cmd/dbpal a truncated model.
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("saved to %s\n", *out)
}
