// Command dbpal-generate runs the DBPal training pipeline for a schema
// and streams the synthesized NL–SQL pairs as tab-separated lines
// (NL, SQL, template id, class; -prov appends stage and origin) to
// stdout or a file — the corpus any pluggable model can train on.
// Pairs are written as the stage graph produces them, so memory stays
// constant no matter the corpus size.
//
//	dbpal-generate -schema patients -size 8 > pairs.tsv
//	dbpal-generate -schema geo -stats 2>stats.json > pairs.tsv
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	dbpal "repro"
	"repro/internal/patients"
	"repro/internal/spider"
)

func main() {
	var (
		schemaName = flag.String("schema", "patients", "schema: patients or a Spider-zoo name")
		out        = flag.String("o", "", "output file (default stdout)")
		seed       = flag.Int64("seed", 1, "generation seed")
		size       = flag.Int("size", 0, "override sizeSlotFills (instances per template)")
		workers    = flag.Int("workers", 0, "parallel stage workers, 0 = all cores (output is identical at any value)")
		noAugment  = flag.Bool("no-augment", false, "drop the augmentation stage")
		noLemma    = flag.Bool("no-lemmatize", false, "drop the lemmatization stage")
		noDedup    = flag.Bool("no-dedup", false, "drop the final exact-duplicate filter")
		prov       = flag.Bool("prov", false, "append provenance columns: originating stage and variant origin")
		stats      = flag.Bool("stats", false, "print a JSON report (pair counts, per-stage instrumentation) to stderr")
	)
	flag.Parse()

	s := resolve(*schemaName)
	if s == nil {
		fmt.Fprintf(os.Stderr, "unknown schema %q\n", *schemaName)
		os.Exit(1)
	}
	params := dbpal.DefaultParams()
	if *size > 0 {
		params.Instantiation.SizeSlotFills = *size
	}

	// Structural choices are stage-list edits: each -no-* flag removes
	// a stage from the default composition.
	p := dbpal.NewPipeline(s, params, *seed)
	p.Workers = *workers
	stages := []dbpal.Stage{p.GenerateStage()}
	if !*noAugment {
		stages = append(stages, p.AugmentStage())
	}
	if !*noLemma {
		stages = append(stages, dbpal.LemmaStage())
	}
	if !*noDedup {
		stages = append(stages, dbpal.DedupStage())
	}
	g := p.Graph(stages...)

	w := bufio.NewWriter(os.Stdout)
	var f *os.File
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w = bufio.NewWriter(f)
	}

	// SIGINT/SIGTERM cancel the stage graph; pairs already emitted by
	// the final stage are still flushed, so an interrupted run leaves a
	// valid (deterministic-prefix) partial corpus.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	classCounts := map[string]int{}
	pairs := 0
	err := g.Run(ctx, func(q dbpal.Pair) error {
		pairs++
		classCounts[q.Class.String()]++
		if *prov {
			_, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n", q.NL, q.SQL, q.TemplateID, q.Class, q.Stage, q.Origin)
			return err
		}
		_, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", q.NL, q.SQL, q.TemplateID, q.Class)
		return err
	})
	// A full disk or closed pipe must not produce a silently truncated
	// corpus: surface the buffered writer's flush and the file close.
	// On cancellation the partial corpus is flushed first.
	interrupted := err != nil && ctx.Err() != nil
	if err == nil || interrupted {
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
	}
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "interrupted: flushed partial corpus of %d pairs\n", pairs)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *stats {
		report := struct {
			Schema  string             `json:"schema"`
			Pairs   int                `json:"pairs"`
			Classes map[string]int     `json:"classes"`
			Stages  []dbpal.StageStats `json:"stages"`
		}{s.Name, pairs, classCounts, g.Stats()}
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func resolve(name string) *dbpal.Schema {
	if name == "patients" {
		return patients.Schema()
	}
	return spider.SchemaByName(name)
}
