// Command dbpal-generate runs the DBPal training pipeline for a schema
// and writes the synthesized NL–SQL pairs as tab-separated lines
// (NL, SQL, template id, class) to stdout or a file — the corpus any
// pluggable model can train on.
//
//	dbpal-generate -schema patients -size 8 > pairs.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	dbpal "repro"
	"repro/internal/patients"
	"repro/internal/spider"
)

func main() {
	var (
		schemaName = flag.String("schema", "patients", "schema: patients or a Spider-zoo name")
		out        = flag.String("o", "", "output file (default stdout)")
		seed       = flag.Int64("seed", 1, "generation seed")
		size       = flag.Int("size", 0, "override sizeSlotFills (instances per template)")
		noAugment  = flag.Bool("no-augment", false, "skip the augmentation step")
		noLemma    = flag.Bool("no-lemmatize", false, "skip the lemmatization step")
		stats      = flag.Bool("stats", false, "print per-class counts to stderr")
	)
	flag.Parse()

	s := resolve(*schemaName)
	if s == nil {
		fmt.Fprintf(os.Stderr, "unknown schema %q\n", *schemaName)
		os.Exit(1)
	}
	params := dbpal.DefaultParams()
	if *size > 0 {
		params.Instantiation.SizeSlotFills = *size
	}
	if *noAugment {
		params.Augmentation.SizePara = 0
		params.Augmentation.NumPara = 0
		params.Augmentation.NumMissing = 0
		params.Augmentation.RandDropP = 0
	}
	params.Lemmatize = !*noLemma

	pairs := dbpal.GenerateTrainingData(s, params, *seed)

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	classCounts := map[string]int{}
	for _, p := range pairs {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", p.NL, p.SQL, p.TemplateID, p.Class)
		classCounts[p.Class.String()]++
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "schema=%s pairs=%d\n", s.Name, len(pairs))
		var parts []string
		for k, v := range classCounts {
			parts = append(parts, fmt.Sprintf("%s=%d", k, v))
		}
		fmt.Fprintln(os.Stderr, strings.Join(parts, " "))
	}
}

func resolve(name string) *dbpal.Schema {
	if name == "patients" {
		return patients.Schema()
	}
	return spider.SchemaByName(name)
}
