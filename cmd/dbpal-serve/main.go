// Command dbpal-serve exposes a bootstrapped DBPal model over HTTP
// behind the hardened serving layer (internal/serve): admission
// control with bounded queueing, per-request deadlines, per-tier
// circuit breakers, seeded retry backoff, graceful drain, and the
// inference hot path: an anonymization-keyed result cache and
// cross-request microbatched decode (-cache-size, -batch-max,
// -batch-wait).
//
//	dbpal-serve -schema patients -model nn -addr :8080
//	curl 'localhost:8080/ask?q=show+the+names+of+all+patients+with+age+80'
//
// Endpoints: /ask (translate + execute), /translate (translate only),
// /healthz, /readyz, /statsz. SIGINT/SIGTERM drain: /readyz flips to
// 503, in-flight requests finish under -drain, then the process exits
// 0.
//
// Use -model nn for the instant-start template nearest-neighbor
// translator (no neural training), or sketch/seq2seq as in dbpal,
// optionally with -load for weights saved by dbpal-train.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	dbpal "repro"
	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/patients"
	"repro/internal/serve"
	"repro/internal/spider"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		schemaName = flag.String("schema", "patients", "schema: patients | flights | college | geo | ...")
		modelKind  = flag.String("model", "sketch", "translator: sketch | seq2seq | nn")
		loadPath   = flag.String("load", "", "load model weights saved by dbpal-train instead of training")
		seed       = flag.Int64("seed", 1, "pipeline, training, and retry-jitter seed")
		rows       = flag.Int("rows", 40, "synthetic rows per table for non-patients schemas")
		execGuided = flag.Int("execguided", 1, "try up to N ranked candidates, keeping the first that executes")
		deadline   = flag.Duration("deadline", 0, "per-question inference deadline per tier (0 = none)")
		fallback   = flag.Bool("fallback", true, "degrade to a template nearest-neighbor tier when the primary model fails")

		workers  = flag.Int("workers", 0, "max concurrent translations (0 = NumCPU)")
		queue    = flag.Int("queue", 0, "waiting-room size before shedding (0 = 2x workers)")
		timeout  = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		drain    = flag.Duration("drain", 15*time.Second, "max wait for in-flight requests on shutdown")
		retries  = flag.Int("retries", 1, "retry attempts after a transient translation failure")
		breakers = flag.Bool("breakers", true, "run a circuit breaker per translator tier")
		cooldown = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before the half-open probe")

		cacheSize = flag.Int("cache-size", 1024, "anonymization-keyed result cache entries (0 = no cache)")
		batchMax  = flag.Int("batch-max", 8, "microbatch size: concurrent decodes share one batched forward pass (0 or 1 = no batching)")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "max time a partial microbatch waits before flushing")
	)
	flag.Parse()

	if err := run(config{
		addr: *addr, schemaName: *schemaName, modelKind: *modelKind, loadPath: *loadPath,
		seed: *seed, rows: *rows, execGuided: *execGuided, deadline: *deadline, fallback: *fallback,
		workers: *workers, queue: *queue, timeout: *timeout, drain: *drain,
		retries: *retries, breakers: *breakers, cooldown: *cooldown,
		cacheSize: *cacheSize, batchMax: *batchMax, batchWait: *batchWait,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type config struct {
	addr, schemaName, modelKind, loadPath string
	seed                                  int64
	rows, execGuided                      int
	deadline                              time.Duration
	fallback                              bool
	workers, queue                        int
	timeout, drain                        time.Duration
	retries                               int
	breakers                              bool
	cooldown                              time.Duration
	cacheSize, batchMax                   int
	batchWait                             time.Duration
}

func run(cfg config) error {
	s, db, err := resolveSchema(cfg.schemaName, cfg.rows, cfg.seed)
	if err != nil {
		return err
	}

	// The synthesized corpus trains the primary model (unless loaded
	// from disk) and the nearest-neighbor tier.
	var exs []dbpal.Example
	if cfg.loadPath == "" || cfg.fallback || cfg.modelKind == "nn" {
		pairs := dbpal.GenerateTrainingData(s, dbpal.DefaultParams(), cfg.seed)
		fmt.Printf("pipeline synthesized %d NL-SQL pairs\n", len(pairs))
		exs = dbpal.TrainingExamples(pairs, s)
	}

	var model dbpal.Translator
	switch {
	case cfg.modelKind == "nn":
		nn := models.NewNearestNeighbor()
		nn.Train(exs)
		model = nn
	case cfg.loadPath != "":
		model, err = loadModel(cfg.modelKind, cfg.loadPath)
		if err != nil {
			return err
		}
		fmt.Printf("loaded %s model from %s\n", cfg.modelKind, cfg.loadPath)
	default:
		fmt.Printf("bootstrapping DBPal for schema %q (%s model)...\n", s.Name, cfg.modelKind)
		model = newModel(cfg.modelKind, cfg.seed)
		model.Train(exs)
	}

	nli := dbpal.NewInterface(db, model)
	nli.ExecutionGuided = cfg.execGuided
	nli.Deadline = cfg.deadline
	if cfg.fallback && cfg.modelKind != "nn" {
		nn := models.NewNearestNeighbor()
		nn.Train(exs)
		nli.Fallbacks = []dbpal.Translator{nn}
	}

	srv := serve.New(nli, serve.Config{
		Workers: cfg.workers,
		Queue:   cfg.queue,
		Timeout: cfg.timeout,
		Retry: serve.RetryPolicy{
			MaxAttempts: cfg.retries + 1,
			Seed:        cfg.seed,
		},
		Breaker:         serve.BreakerConfig{Cooldown: cfg.cooldown},
		DisableBreakers: !cfg.breakers,
		CacheSize:       cfg.cacheSize,
		BatchMax:        cfg.batchMax,
		BatchWait:       cfg.batchWait,
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	errc := srv.Start(ln)
	fmt.Printf("serving schema %q on http://%s (/ask /translate /healthz /readyz /statsz)\n",
		s.Name, ln.Addr())

	// SIGINT/SIGTERM start the drain; a second deadline bounds it.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case err := <-errc:
		// The listener died underneath us.
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	fmt.Printf("signal received; draining (up to %s)...\n", cfg.drain)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Println("drained; bye")
	return nil
}

func resolveSchema(name string, rows int, seed int64) (*dbpal.Schema, *dbpal.Database, error) {
	if name == "patients" {
		db, err := patients.Database()
		if err != nil {
			return nil, nil, err
		}
		return patients.Schema(), db, nil
	}
	s := spider.SchemaByName(name)
	if s == nil {
		var names []string
		for _, z := range spider.AllSchemas() {
			names = append(names, z.Name)
		}
		return nil, nil, fmt.Errorf("unknown schema %q; available: patients, %s", name, strings.Join(names, ", "))
	}
	db, err := engine.GenerateData(s, rows, seed)
	if err != nil {
		return nil, nil, err
	}
	return s, db, nil
}

func newModel(kind string, seed int64) dbpal.Translator {
	switch kind {
	case "seq2seq":
		cfg := dbpal.DefaultSeq2SeqConfig()
		cfg.Seed = seed
		return dbpal.NewSeq2Seq(cfg)
	default:
		cfg := dbpal.DefaultSketchConfig()
		cfg.Seed = seed
		return dbpal.NewSketch(cfg)
	}
}

func loadModel(kind, path string) (dbpal.Translator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var m dbpal.Translator
	if kind == "seq2seq" {
		m, err = models.LoadSeq2Seq(f)
	} else {
		m, err = models.LoadSketch(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}
