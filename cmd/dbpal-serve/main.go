// Command dbpal-serve exposes bootstrapped DBPal models over HTTP
// behind the hardened multi-tenant serving layer (internal/serve):
// per-tenant admission control with bounded queueing, per-request
// deadlines, per-tier circuit breakers, seeded retry backoff, graceful
// drain, and the inference hot path: an anonymization-keyed result
// cache and cross-request microbatched decode (-cache-size,
// -batch-max, -batch-wait).
//
//	dbpal-serve -schema patients,flights -model nn -addr :8080
//	curl 'localhost:8080/v1/flights/ask?q=show+the+names+of+all+airlines'
//	curl -X POST localhost:8080/schemas -d '{"schema":"college","model":"nn"}'
//
// -schema takes a comma-separated list; every named schema boots
// before the listener opens, and the first is the default tenant for
// the legacy un-prefixed routes. More schemas onboard at runtime
// through POST /schemas — generate→train→eval→swap in the background,
// with progress at GET /schemas/{name} — gated by -min-accuracy and
// restartable from -checkpoint-dir.
//
// Endpoints: /v1/{schema}/ask (translate + execute), /v1/{schema}/
// translate, the legacy /ask and /translate (?schema= selects a
// tenant), /schemas (GET list, POST onboard), /schemas/{name} (GET
// status, DELETE), /healthz, /readyz, /statsz. SIGINT/SIGTERM drain:
// /readyz flips to 503, onboarding is cancelled (its checkpoint
// survives for the next run), in-flight requests finish under -drain,
// then the process exits 0.
//
// Use -model nn for the instant-start template nearest-neighbor
// translator (no neural training), or sketch/seq2seq as in dbpal,
// optionally with -load for weights saved by dbpal-train.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/boot"
	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		schemas    = flag.String("schema", "patients", "comma-separated schemas to boot: patients | flights | ... | synth:<seed>")
		modelKind  = flag.String("model", "sketch", "translator: sketch | seq2seq | nn")
		loadPath   = flag.String("load", "", "load model weights saved by dbpal-train instead of training (single-schema only)")
		seed       = flag.Int64("seed", 1, "pipeline, training, and retry-jitter seed")
		rows       = flag.Int("rows", 40, "synthetic rows per table for non-patients schemas")
		execGuided = flag.Int("execguided", 1, "try up to N ranked candidates, keeping the first that executes")
		deadline   = flag.Duration("deadline", 0, "per-question inference deadline per tier (0 = none)")
		fallback   = flag.Bool("fallback", true, "degrade to a template nearest-neighbor tier when the primary model fails")

		workers  = flag.Int("workers", 0, "max concurrent translations per tenant (0 = NumCPU)")
		queue    = flag.Int("queue", 0, "waiting-room size before shedding (0 = 2x workers)")
		timeout  = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		drain    = flag.Duration("drain", 15*time.Second, "max wait for in-flight requests on shutdown")
		retries  = flag.Int("retries", 1, "retry attempts after a transient translation failure")
		breakers = flag.Bool("breakers", true, "run a circuit breaker per translator tier")
		cooldown = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before the half-open probe")

		criticOn  = flag.Bool("critic", true, "validate and repair every candidate through the execution-guided critic before answering")
		rowBudget = flag.Int("critic-budget", 0, "critic dry-run row budget (0 = default)")
		criticTO  = flag.Duration("critic-timeout", 0, "critic dry-run deadline (0 = default)")

		cacheSize = flag.Int("cache-size", 1024, "anonymization-keyed result cache entries per model version (0 = no cache)")
		batchMax  = flag.Int("batch-max", 8, "microbatch size: concurrent decodes share one batched forward pass (0 or 1 = no batching)")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "max time a partial microbatch waits before flushing")

		minAcc    = flag.Float64("min-accuracy", 0, "onboarding eval gate: reject candidate models scoring below this (0 = no gate)")
		evalQs    = flag.Int("eval-questions", 0, "onboarding eval workload size (0 = default, negative = skip eval)")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for restartable onboarding checkpoints (empty = not restartable)")
		ckptEvery = flag.Int("checkpoint-every", 0, "optimizer steps between onboarding checkpoints (0 = default)")
	)
	flag.Parse()

	if err := run(config{
		addr: *addr, schemas: strings.Split(*schemas, ","), modelKind: *modelKind, loadPath: *loadPath,
		seed: *seed, rows: *rows, execGuided: *execGuided, deadline: *deadline, fallback: *fallback,
		workers: *workers, queue: *queue, timeout: *timeout, drain: *drain,
		retries: *retries, breakers: *breakers, cooldown: *cooldown,
		critic: *criticOn, criticBudget: *rowBudget, criticTimeout: *criticTO,
		cacheSize: *cacheSize, batchMax: *batchMax, batchWait: *batchWait,
		minAccuracy: *minAcc, evalQuestions: *evalQs,
		checkpointDir: *ckptDir, checkpointEvery: *ckptEvery,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type config struct {
	addr                string
	schemas             []string
	modelKind, loadPath string
	seed                int64
	rows, execGuided    int
	deadline            time.Duration
	fallback            bool
	workers, queue      int
	timeout, drain      time.Duration
	retries             int
	breakers            bool
	cooldown            time.Duration
	critic              bool
	criticBudget        int
	criticTimeout       time.Duration
	cacheSize, batchMax int
	batchWait           time.Duration
	minAccuracy         float64
	evalQuestions       int
	checkpointDir       string
	checkpointEvery     int
}

func run(cfg config) error {
	if cfg.loadPath != "" && len(cfg.schemas) > 1 {
		return fmt.Errorf("-load applies to a single schema; got %d", len(cfg.schemas))
	}

	// Boot every named schema before the listener opens: each is a
	// self-contained tenant unit built through the shared path.
	var units []*boot.Unit
	for _, name := range cfg.schemas {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		u, err := boot.Build(context.Background(), boot.Spec{
			Schema:     name,
			Model:      cfg.modelKind,
			LoadPath:   cfg.loadPath,
			Seed:       cfg.seed,
			Rows:       cfg.rows,
			ExecGuided: cfg.execGuided,
			Deadline:   cfg.deadline,
			Fallback:   cfg.fallback,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err != nil {
			return fmt.Errorf("booting %s: %w", name, err)
		}
		units = append(units, u)
	}
	if len(units) == 0 {
		return fmt.Errorf("no schemas to serve")
	}

	srv := serve.NewMulti(units, serve.Config{
		Workers: cfg.workers,
		Queue:   cfg.queue,
		Timeout: cfg.timeout,
		Retry: serve.RetryPolicy{
			MaxAttempts: cfg.retries + 1,
			Seed:        cfg.seed,
		},
		Breaker:         serve.BreakerConfig{Cooldown: cfg.cooldown},
		DisableBreakers: !cfg.breakers,
		Critic:          cfg.critic,
		CriticRowBudget: cfg.criticBudget,
		CriticTimeout:   cfg.criticTimeout,
		CacheSize:       cfg.cacheSize,
		BatchMax:        cfg.batchMax,
		BatchWait:       cfg.batchWait,
		MinAccuracy:     cfg.minAccuracy,
		EvalQuestions:   cfg.evalQuestions,
		CheckpointDir:   cfg.checkpointDir,
		CheckpointEvery: cfg.checkpointEvery,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	errc := srv.Start(ln)
	var names []string
	for _, u := range units {
		names = append(names, u.Schema.Name)
	}
	fmt.Printf("serving schemas [%s] on http://%s (/v1/{schema}/ask /schemas /healthz /readyz /statsz)\n",
		strings.Join(names, " "), ln.Addr())

	// SIGINT/SIGTERM start the drain; a second deadline bounds it.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case err := <-errc:
		// The listener died underneath us.
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	fmt.Printf("signal received; draining (up to %s)...\n", cfg.drain)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Println("drained; bye")
	return nil
}
